"""NR synchronisation signals (38.211 §7.4.2): 127-long m-sequences.

Unlike LTE's Zadoff-Chu PSS, NR uses BPSK m-sequences — but the tag's
envelope circuit never cared about the sequence family, only about the
periodic power structure, and the UE detection is still a correlation.
"""

from __future__ import annotations

import numpy as np

#: Length of the NR PSS/SSS sequences.
NR_SYNC_LENGTH = 127


def _m_sequence(init_bits, taps):
    """Length-127 binary m-sequence from a degree-7 LFSR.

    ``init_bits`` are x(0)..x(6); ``taps`` the recursion offsets so that
    x(i+7) = sum(x(i+t) for t in taps) mod 2.
    """
    x = list(init_bits)
    for i in range(NR_SYNC_LENGTH - 7):
        x.append(sum(x[i + t] for t in taps) % 2)
    return np.array(x, dtype=np.int8)


#: PSS generator: x(i+7) = x(i+4) + x(i), init x(0..6) = 0,1,1,0,1,1,1.
_PSS_X = _m_sequence([0, 1, 1, 0, 1, 1, 1], (4, 0))

#: SSS generators (38.211 §7.4.2.3): both init to x(0)=1, rest 0.
_SSS_X0 = _m_sequence([1, 0, 0, 0, 0, 0, 0], (4, 0))
_SSS_X1 = _m_sequence([1, 0, 0, 0, 0, 0, 0], (1, 0))


def nr_pss(n_id_2):
    """NR PSS: d(n) = 1 - 2 x((n + 43 N_ID2) mod 127)."""
    if n_id_2 not in (0, 1, 2):
        raise ValueError("N_ID^(2) must be 0..2")
    n = np.arange(NR_SYNC_LENGTH)
    return (1 - 2 * _PSS_X[(n + 43 * n_id_2) % NR_SYNC_LENGTH]).astype(float)


def nr_sss(n_id_1, n_id_2):
    """NR SSS: product of two shifted m-sequences."""
    if not 0 <= n_id_1 <= 335:
        raise ValueError("N_ID^(1) must be 0..335")
    if n_id_2 not in (0, 1, 2):
        raise ValueError("N_ID^(2) must be 0..2")
    m0 = 15 * (n_id_1 // 112) + 5 * n_id_2
    m1 = n_id_1 % 112
    n = np.arange(NR_SYNC_LENGTH)
    s0 = 1 - 2 * _SSS_X0[(n + m0) % NR_SYNC_LENGTH]
    s1 = 1 - 2 * _SSS_X1[(n + m1) % NR_SYNC_LENGTH]
    return (s0 * s1).astype(float)


def detect_nr_pss_sequence(observed):
    """Identify N_ID^(2) from an observed (equalised) PSS; returns (id, metric)."""
    observed = np.asarray(observed, dtype=complex)
    if observed.shape != (NR_SYNC_LENGTH,):
        raise ValueError("observed PSS must have 127 elements")
    best = (-1, -np.inf)
    for n_id_2 in (0, 1, 2):
        metric = float(np.real(np.vdot(nr_pss(n_id_2).astype(complex), observed)))
        if metric > best[1]:
            best = (n_id_2, metric)
    return best


def detect_nr_sss_sequence(observed, n_id_2):
    """Identify N_ID^(1) from an observed SSS; returns (id, metric)."""
    observed = np.asarray(observed, dtype=complex)
    best = (-1, -np.inf)
    for n_id_1 in range(336):
        metric = float(
            np.real(np.vdot(nr_sss(n_id_1, n_id_2).astype(complex), observed))
        )
        if metric > best[1]:
            best = (n_id_1, metric)
    return best
