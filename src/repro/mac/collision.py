"""IQ-level two-tag collision: superimposed reflections at the UE.

Both tags reflect the same ambient frame into the same shifted band; the
UE's preamble search and matched filter lock onto whichever reflection
dominates.  The capture behaviour measured here calibrates the analytic
scheme's ``CAPTURE_THRESHOLD_DB``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bsrx.demodulator import BackscatterDemodulator
from repro.core.metrics import measure_ber
from repro.lte import LteTransmitter
from repro.tag.controller import TagController
from repro.tag.modulator import ChipModulator
from repro.utils.dsp import awgn
from repro.utils.rng import make_rng, spawn_rngs


@dataclass
class CollisionOutcome:
    """BER of the stronger tag's data under a given power advantage."""

    power_advantage_db: float
    strong_tag_ber: float
    n_bits: int


def two_tag_collision(
    power_advantage_db,
    bandwidth_mhz=1.4,
    n_frames=2,
    snr_db=35.0,
    seed=0,
):
    """Collide two tags; returns the stronger tag's :class:`CollisionOutcome`.

    Both tags are frame-synchronised (they hear the same PSS) but carry
    independent payloads; the weaker reflection acts as structured
    interference on the stronger one's chips.
    """
    rng_a, rng_b, rng_noise = spawn_rngs(seed, 3)
    capture = LteTransmitter(bandwidth_mhz, rng=seed).transmit(n_frames)
    params = capture.params
    modulator = ChipModulator()

    def reflect(rng, payload_seed):
        controller = TagController(params, rng=rng)
        payload = make_rng(payload_seed).integers(0, 2, size=100_000).astype(np.int8)
        schedule = controller.build_schedule(
            controller.genie_timing(0, 0), len(capture.samples), payload
        )
        return schedule, modulator.reflect(capture.samples, schedule.chips)

    schedule_a, reflection_a = reflect(rng_a, seed + 10)
    schedule_b, reflection_b = reflect(rng_b, seed + 20)

    weaker = 10.0 ** (-float(power_advantage_db) / 20.0)
    hybrid = reflection_a + weaker * reflection_b
    hybrid = awgn(hybrid, snr_db, rng_noise)

    demod = BackscatterDemodulator(params)
    half = params.samples_per_frame // 2
    halves = np.arange(0, len(hybrid) - half + 1, half)
    result = demod.demodulate(hybrid, capture.samples, halves)
    n_bits, n_errors, _, _ = measure_ber(
        schedule_a, result, params.fft_size // 2
    )
    return CollisionOutcome(
        power_advantage_db=float(power_advantage_db),
        strong_tag_ber=n_errors / max(n_bits, 1),
        n_bits=n_bits,
    )
