"""Slot-level access schemes for multiple LScatter tags.

A "slot" here is one tag packet (one LTE slot, 0.5 ms).  All tags hear
the same PSS, so slot boundaries are shared without any control channel.

* :class:`TdmaScheme` — deterministic round-robin ownership; no
  collisions ever, per-tag rate divides by the tag count.
* :class:`SlottedAlohaScheme` — each tag transmits in each slot with
  probability ``p``; simultaneous transmissions collide unless one tag's
  received power exceeds the rest by the capture threshold.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.rng import make_rng

#: Power advantage (dB) at which the strongest colliding tag survives.
CAPTURE_THRESHOLD_DB = 10.0

#: Tag packets per second (2 half-frames x 10 slots per 10 ms).
SLOTS_PER_SECOND = 2000.0


@dataclass
class ContentionReport:
    """Outcome of a contention simulation."""

    scheme: str
    n_tags: int
    slots: int
    per_tag_success: dict = field(default_factory=dict)
    collision_fraction: float = 0.0
    idle_fraction: float = 0.0

    @property
    def aggregate_success_rate(self):
        """Successful packets per slot across all tags."""
        total = sum(self.per_tag_success.values())
        return total / self.slots if self.slots else 0.0

    def per_tag_packets_per_second(self, name):
        return self.per_tag_success[name] / self.slots * SLOTS_PER_SECOND


class TdmaScheme:
    """Round-robin slot ownership derived from the shared PSS timing."""

    name = "tdma"

    def transmitters(self, slot_index, tag_names, rng):
        return [tag_names[slot_index % len(tag_names)]]


class SlottedAlohaScheme:
    """Random access: transmit each slot with probability ``p``."""

    name = "slotted-aloha"

    def __init__(self, p=None):
        #: Default attempt probability 1/n maximises ALOHA throughput.
        self.p = p

    def transmitters(self, slot_index, tag_names, rng):
        p = self.p if self.p is not None else 1.0 / len(tag_names)
        return [name for name in tag_names if rng.random() < p]


class PriorityScheme:
    """EPC-style weighted scheduling: a grant per slot, airtime by weight.

    Models the downlink-scheduler view of an LTE core: every tag has a
    QCI-like integer weight and a central grant (derived, like TDMA, from
    the shared PSS timing plus a static configuration) gives each slot to
    exactly one tag — so it never collides — with long-run airtime
    proportional to weight.  Implemented as deficit weighted round-robin:
    each slot every tag earns ``weight`` credits, the richest tag (ties
    broken by name order) transmits and pays the total earned per slot.
    """

    name = "priority"

    def __init__(self, weights=None, congestion_backoff=False, max_backoff_slots=16):
        #: Tag name -> positive integer weight; unknown tags default to 1.
        self.weights = dict(weights or {})
        self._credits = {}
        #: MAC-level congestion backoff: when the cell reports congestion
        #: (a signalling storm or PDSCH burst eating the idle half-frames
        #: tags harvest), the whole fleet yields the channel for a bounded
        #: exponentially-growing number of slots instead of burning energy
        #: on doomed packets.  Off by default (legacy bit-identical).
        self.congestion_backoff = bool(congestion_backoff)
        self.max_backoff_slots = int(max_backoff_slots)
        if self.max_backoff_slots < 1:
            raise ValueError("max_backoff_slots must be >= 1")
        self._backoff_slots = 0
        self._resume_slot = 0

    def _weight(self, name):
        weight = self.weights.get(name, 1)
        if weight <= 0:
            raise ValueError(f"priority weight for {name!r} must be positive")
        return weight

    def observe_congestion(self, slot_index, congested):
        """Feed one slot's congestion signal into the backoff state.

        Each congested observation doubles the yield window (bounded at
        :attr:`max_backoff_slots`); a clean observation resets it, so the
        scheme recovers immediately once the storm passes.
        """
        if not self.congestion_backoff:
            return
        if congested:
            self._backoff_slots = min(
                self.max_backoff_slots, max(1, self._backoff_slots * 2)
            )
            self._resume_slot = int(slot_index) + 1 + self._backoff_slots
        else:
            self._backoff_slots = 0
            self._resume_slot = 0

    @property
    def backing_off(self):
        return self._backoff_slots > 0

    @property
    def backoff_slots(self):
        """Current yield-window length (always <= max_backoff_slots)."""
        return self._backoff_slots

    def transmitters(self, slot_index, tag_names, rng):
        if self.congestion_backoff and slot_index < self._resume_slot:
            return []
        total = sum(self._weight(name) for name in tag_names)
        for name in tag_names:
            self._credits[name] = self._credits.get(name, 0) + self._weight(name)
        winner = min(tag_names, key=lambda name: (-self._credits[name], name))
        self._credits[winner] -= total
        return [winner]


def simulate_contention(
    tag_powers_dbm,
    scheme,
    n_slots=2000,
    capture_threshold_db=CAPTURE_THRESHOLD_DB,
    rng=None,
):
    """Simulate ``n_slots`` of access among tags with given rx powers.

    ``tag_powers_dbm`` maps tag name -> received backscatter power at the
    UE; stronger tags can capture collided slots.
    Returns a :class:`ContentionReport`.
    """
    rng = make_rng(rng)
    names = sorted(tag_powers_dbm)
    if not names:
        raise ValueError("need at least one tag")
    success = {name: 0 for name in names}
    collisions = 0
    idle = 0
    for slot in range(int(n_slots)):
        active = scheme.transmitters(slot, names, rng)
        if not active:
            idle += 1
            continue
        if len(active) == 1:
            success[active[0]] += 1
            continue
        powers = np.array([tag_powers_dbm[name] for name in active])
        order = np.argsort(powers)[::-1]
        if powers[order[0]] - powers[order[1]] >= capture_threshold_db:
            success[active[order[0]]] += 1
        else:
            collisions += 1
    return ContentionReport(
        scheme=scheme.name,
        n_tags=len(names),
        slots=int(n_slots),
        per_tag_success=success,
        collision_fraction=collisions / n_slots,
        idle_fraction=idle / n_slots,
    )
