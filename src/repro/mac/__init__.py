"""Medium access for multi-tag LScatter deployments.

The paper demonstrates a single tag; any smart-home/city deployment needs
many.  Because every tag derives timing from the same PSS, slot-level
coordination comes for free: this package provides TDMA and slotted-ALOHA
schemes over the tag schedule, an analytic contention model, and an
IQ-level two-tag collision simulation (capture effect included).
"""

from repro.mac.schemes import (
    TdmaScheme,
    SlottedAlohaScheme,
    PriorityScheme,
    ContentionReport,
    simulate_contention,
)
from repro.mac.collision import two_tag_collision

__all__ = [
    "TdmaScheme",
    "SlottedAlohaScheme",
    "PriorityScheme",
    "ContentionReport",
    "simulate_contention",
    "two_tag_collision",
]
