"""Modulation-offset determination (paper §3.3.2, Eq. 7).

The tag's coarse sync leaves the true position of its chip window inside
the OFDM symbol unknown to the UE by up to the guard slack.  The tag
prefixes each packet with a known preamble symbol; the UE slides the
preamble over the candidate offsets, and the offset maximising the
correlation (jointly with the implied path gain) is the modulation offset
used for the rest of the packet.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.signal import fftconvolve


@dataclass(frozen=True)
class OffsetEstimate:
    """Result of the preamble search for one packet."""

    offset: int  # chip-window start within the useful symbol
    gain: complex  # complex path gain (carries the phase offset phi)
    metric: float  # correlation peak (~|gain| when correctly aligned)


def find_modulation_offset(
    observed_useful,
    expected_useful,
    preamble,
    nominal_offset,
    search_slack,
):
    """Locate the preamble chips inside one useful OFDM symbol.

    ``observed_useful``/``expected_useful`` are the received and
    reconstructed-ambient useful-symbol samples (length = FFT size);
    ``preamble`` the known 0/1 chips; candidates are
    ``nominal_offset ± search_slack``, clamped to keep the window inside
    the symbol.

    Returns an :class:`OffsetEstimate`.
    """
    observed_useful = np.asarray(observed_useful, dtype=complex)
    expected_useful = np.asarray(expected_useful, dtype=complex)
    preamble = np.asarray(preamble, dtype=np.int8)
    n_chips = len(preamble)
    fft_size = len(observed_useful)
    if len(expected_useful) != fft_size:
        raise ValueError("observed and expected symbol lengths differ")

    signs = (2 * preamble - 1).astype(float)
    # Per-sample products z_n = y_n * conj(x_n): equals g * chip_n * |x_n|^2.
    z = observed_useful * np.conj(expected_useful)
    weights = np.abs(expected_useful) ** 2

    lo = max(0, int(nominal_offset) - int(search_slack))
    hi = min(fft_size - n_chips, int(nominal_offset) + int(search_slack))
    if hi < lo:
        raise ValueError("search window is empty")

    # Sliding correlation over every candidate offset at once.
    corr_all = fftconvolve(z, signs[::-1].astype(complex), mode="valid")
    energy_all = fftconvolve(weights, np.ones(n_chips), mode="valid").real
    corr_all = corr_all[lo : hi + 1]
    energy_all = np.maximum(energy_all[lo : hi + 1], 1e-30)

    metrics = np.abs(corr_all) / energy_all
    best = int(np.argmax(metrics))
    offset = lo + best
    gain = corr_all[best] / energy_all[best]
    return OffsetEstimate(
        offset=int(offset), gain=complex(gain), metric=float(metrics[best])
    )


@dataclass(frozen=True)
class OffsetEstimateBatch:
    """Per-tag preamble-search results for one stacked packet symbol."""

    offsets: np.ndarray  # (n_tags,) chip-window starts
    gains: np.ndarray  # (n_tags,) complex path gains
    metrics: np.ndarray  # (n_tags,) correlation peaks


def find_modulation_offset_batch(
    observed_useful,
    expected_useful,
    preamble,
    nominal_offset,
    search_slack,
):
    """Row-wise :func:`find_modulation_offset` over a leading tag axis.

    ``observed_useful``/``expected_useful`` are ``(n_tags, fft_size)``
    stacks of the same packet symbol seen by every tag on one shared
    ambient capture.  The sliding correlations run as one batched
    ``fftconvolve`` along the symbol axis; each row's offset, gain and
    metric are bit-identical to the 1-D search (ties resolve to the first
    maximum in both, and ``argmax(axis=1)`` keeps that order).
    """
    observed_useful = np.asarray(observed_useful, dtype=complex)
    expected_useful = np.asarray(expected_useful, dtype=complex)
    preamble = np.asarray(preamble, dtype=np.int8)
    if observed_useful.ndim != 2:
        raise ValueError("expected (n_tags, fft_size) stacks")
    if observed_useful.shape != expected_useful.shape:
        raise ValueError("observed and expected symbol shapes differ")
    n_chips = len(preamble)
    fft_size = observed_useful.shape[1]

    signs = (2 * preamble - 1).astype(float)
    z = observed_useful * np.conj(expected_useful)
    weights = np.abs(expected_useful) ** 2

    lo = max(0, int(nominal_offset) - int(search_slack))
    hi = min(fft_size - n_chips, int(nominal_offset) + int(search_slack))
    if hi < lo:
        raise ValueError("search window is empty")

    corr_all = fftconvolve(
        z, signs[None, ::-1].astype(complex), mode="valid", axes=1
    )
    energy_all = fftconvolve(
        weights, np.ones((1, n_chips)), mode="valid", axes=1
    ).real
    corr_all = corr_all[:, lo : hi + 1]
    energy_all = np.maximum(energy_all[:, lo : hi + 1], 1e-30)

    metrics = np.abs(corr_all) / energy_all
    best = np.argmax(metrics, axis=1)
    rows = np.arange(observed_useful.shape[0])
    return OffsetEstimateBatch(
        offsets=(lo + best).astype(np.int64),
        gains=corr_all[rows, best] / energy_all[rows, best],
        metrics=metrics[rows, best],
    )
