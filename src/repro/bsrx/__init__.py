"""Backscatter receiver: recovering tag chips from the hybrid LTE signal.

Implements the UE-side pipeline of paper §3.3 — phase-offset elimination
(Eq. 6), modulation-offset determination via the preamble (Eq. 7), and
parallel chip demodulation — at both the frequency-domain formulation the
paper presents and the numerically-equivalent per-unit matched filter the
code runs.
"""

from repro.bsrx.phase_offset import (
    eliminate_phase_offset,
    estimate_path_gain,
    apply_phase_offset,
)
from repro.bsrx.mod_offset import find_modulation_offset, OffsetEstimate
from repro.bsrx.demodulator import BackscatterDemodulator, BsDemodResult

__all__ = [
    "eliminate_phase_offset",
    "estimate_path_gain",
    "apply_phase_offset",
    "find_modulation_offset",
    "OffsetEstimate",
    "BackscatterDemodulator",
    "BsDemodResult",
]
