"""Phase-offset elimination (paper §3.3.1, Eq. 5/6).

The tag's chip clock is not phase-aligned to the eNodeB's sample clock,
and the backscatter path adds its own delay response; together they rotate
every demodulated value by a common unknown ``e^{j phi}`` (paper Fig. 12).

The paper cancels phi by conjugate-multiplying data subcarriers with a
reference subcarrier, both of which carry the same rotation (Eq. 6).  The
equivalent — and what the production pipeline uses — is to estimate the
complex path gain ``g = |g| e^{j phi}`` from resource elements whose chips
are known (the unmodulated PSS/SSS reflection, or the packet preamble) and
derotate by ``conj(g)``.  Both forms are provided; the Fig. 12 experiment
uses the subcarrier-product form directly.
"""

from __future__ import annotations

import numpy as np


def apply_phase_offset(values, phi):
    """Rotate values by a phase offset (used by tests and Fig. 12)."""
    return np.asarray(values, dtype=complex) * np.exp(1j * float(phi))


def eliminate_phase_offset(subcarriers, reference_index=0):
    """Paper Eq. 6: multiply every subcarrier by the reference's conjugate.

    ``subcarriers`` are the demodulated values ``Y_k`` of one symbol; the
    common rotation ``e^{j phi}`` cancels in ``Y_k Y_r^*``.  Returns the
    products (the reference position itself carries ``|Y_r|^2``).
    """
    subcarriers = np.asarray(subcarriers, dtype=complex)
    reference = subcarriers[int(reference_index)]
    return subcarriers * np.conj(reference)


def estimate_path_gain(observed, expected):
    """Least-squares complex gain g such that observed ~= g * expected.

    Used on sample windows whose expected content is known: the PSS/SSS
    symbols the tag reflects unmodulated, or a preamble window after chip
    alignment.
    """
    observed = np.asarray(observed, dtype=complex)
    expected = np.asarray(expected, dtype=complex)
    if observed.shape != expected.shape:
        raise ValueError("observed and expected must be the same shape")
    energy = float(np.sum(np.abs(expected) ** 2))
    if energy <= 0.0:
        return 0.0 + 0.0j
    return complex(np.vdot(expected, observed) / energy)


def estimate_path_gain_batch(observed, expected):
    """Row-wise :func:`estimate_path_gain` over a leading tag axis.

    ``observed``/``expected`` are ``(n_tags, n)`` stacks of sample windows;
    returns the ``(n_tags,)`` complex gains.  Rows with zero sounding
    energy return ``0j`` like the 1-D form.  (The reduction is a batched
    sum rather than ``np.vdot``, so gains match the 1-D call to floating
    round-off, not bitwise — callers needing the bit-identical contract
    use the demodulator's gains, which come from the offset search.)
    """
    observed = np.asarray(observed, dtype=complex)
    expected = np.asarray(expected, dtype=complex)
    if observed.shape != expected.shape:
        raise ValueError("observed and expected must be the same shape")
    if observed.ndim != 2:
        raise ValueError("expected (n_tags, n) stacks")
    energy = np.sum(np.abs(expected) ** 2, axis=1)
    live = energy > 0.0
    gains = np.zeros(observed.shape[0], dtype=complex)
    if np.any(live):
        num = np.sum(np.conj(expected[live]) * observed[live], axis=1)
        gains[live] = num / energy[live]
    return gains
