"""Chunked streaming backscatter demodulation in bounded memory.

The whole-capture path (:meth:`BackscatterDemodulator.demodulate`) holds
the full shifted capture and reference in memory at once; for a
long-running receiver (hours of ambient LTE) that is linear in capture
length.  :class:`StreamingDemodulator` consumes the same capture in
half-frame-aligned chunks and carries its receiver state across chunk
boundaries, so memory stays O(chunk) however long the recording runs.

Two ways to feed it:

* :meth:`StreamingDemodulator.demodulate` — drop-in signature of the
  whole-capture call; the inputs may be memory-mapped arrays and only one
  chunk is materialised at a time.
* :meth:`StreamingDemodulator.push` + :meth:`StreamingDemodulator.finish`
  — incremental: hand over samples as they arrive (any ragged chunk
  lengths, including boundaries landing mid-packet); buffered samples are
  demodulated as soon as a full half-frame is available and the buffer is
  trimmed behind the grid.

State carried across chunks (:class:`StreamCarry`): the position of the
next half-frame boundary on the PSS-derived grid (which is the receiver's
sync state — each boundary is a re-acquisition point), plus the most
recent packet gain and cascade sounding as warm-start diagnostics.  The
trailing partial half-frame at end-of-capture goes through the
demodulator core's truncated-tail handling and comes out as erasure
windows, never a crash or a silent drop.

Every emitted window is bit-identical to the whole-capture call on the
same samples: the core operates on chunk-local views whose contents equal
the corresponding capture slices, and all indices are shifted back to
absolute capture coordinates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bsrx.demodulator import BackscatterDemodulator, _DemodSink
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span

#: Default chunk size, in half-frames.  Four half-frames (20 ms) keep the
#: working set of a 20 MHz capture under ~20 MB while amortising the
#: per-chunk Python overhead.
DEFAULT_CHUNK_HALF_FRAMES = 4


@dataclass
class StreamCarry:
    """Receiver state carried across chunk boundaries."""

    #: Next half-frame boundary on the PSS-derived grid (absolute sample
    #: index) — the sync state: where demodulation resumes in the next
    #: chunk.
    next_half_frame_start: int = 0
    #: Half-frames fully demodulated so far.
    half_frames_done: int = 0
    #: Complex path gain of the most recent non-erased packet (the Eq. 5/6
    #: phase offset); a warm-start diagnostic — each half-frame re-sounds
    #: the channel on its own PSS/SSS reflection.
    last_gain: complex = 0j
    #: Cascade frequency response from the most recent sounding, if any.
    last_cascade: np.ndarray | None = field(default=None, repr=False)


class StreamingDemodulator:
    """Demodulate a capture chunk-by-chunk in bounded memory."""

    def __init__(
        self,
        params,
        chunk_half_frames=DEFAULT_CHUNK_HALF_FRAMES,
        search_slack=None,
        erasure_threshold=None,
        snr_gate_db=None,
        first_half_frame_start=0,
    ):
        self.chunk_half_frames = int(chunk_half_frames)
        if self.chunk_half_frames < 1:
            raise ValueError(
                f"chunk_half_frames must be >= 1, got {chunk_half_frames}"
            )
        self.demodulator = BackscatterDemodulator(
            params,
            search_slack=search_slack,
            erasure_threshold=erasure_threshold,
            snr_gate_db=snr_gate_db,
        )
        self.params = self.demodulator.params
        #: Samples per half-frame (also the demodulation span of one
        #: half-frame — slot 9's last useful symbol ends exactly on the
        #: next boundary).
        self.half_frame_samples = self.params.samples_per_frame // 2
        self.carry = StreamCarry(
            next_half_frame_start=int(first_half_frame_start)
        )
        self._sink = _DemodSink()
        self._buffer_shifted = np.zeros(0, dtype=complex)
        self._buffer_reference = np.zeros(0, dtype=complex)
        #: Absolute capture index of ``_buffer_shifted[0]``.  The
        #: incremental API assumes pushes start at sample 0; samples
        #: before ``first_half_frame_start`` are buffered but never
        #: demodulated (the grid starts there).
        self._buffer_base = 0
        self._finished = False

    # -- incremental API ---------------------------------------------------------

    @property
    def buffered_samples(self):
        return len(self._buffer_shifted)

    def push(self, shifted_chunk, ambient_reference_chunk):
        """Feed the next samples of both streams (any length, even 0).

        Full half-frames are demodulated as soon as they are buffered;
        the internal buffer keeps only the unfinished tail, so feeding
        bounded-size chunks bounds total memory.
        """
        if self._finished:
            raise RuntimeError("stream already finished")
        shifted_chunk = np.asarray(shifted_chunk, dtype=complex)
        reference_chunk = np.asarray(ambient_reference_chunk, dtype=complex)
        if shifted_chunk.shape != reference_chunk.shape:
            raise ValueError("capture and reference chunks must be sample-aligned")
        self._buffer_shifted = np.concatenate([self._buffer_shifted, shifted_chunk])
        self._buffer_reference = np.concatenate(
            [self._buffer_reference, reference_chunk]
        )
        self._drain()

    def _drain(self):
        """Demodulate every fully buffered half-frame and trim behind it."""
        demod = self.demodulator
        stride = self.half_frame_samples
        span_needed = demod.half_frame_span
        limit = len(self._buffer_shifted)
        while True:
            local = self.carry.next_half_frame_start - self._buffer_base
            if local < 0 or local + span_needed > limit:
                break
            self._sink.base = self._buffer_base
            cascade = demod._demod_half_frame(
                self._buffer_shifted,
                self._buffer_reference,
                local,
                limit,
                self._sink,
            )
            self._update_carry(cascade)
            self.carry.next_half_frame_start += stride
            self.carry.half_frames_done += 1
        # Trim everything before the next boundary: it can never be
        # touched again (each half-frame's span ends on the next one).
        local = self.carry.next_half_frame_start - self._buffer_base
        if local > 0:
            drop = min(local, len(self._buffer_shifted))
            self._buffer_shifted = self._buffer_shifted[drop:]
            self._buffer_reference = self._buffer_reference[drop:]
            self._buffer_base += drop

    def _update_carry(self, cascade):
        if cascade is not None:
            self.carry.last_cascade = cascade
        for packet in reversed(self._sink.packets):
            if packet.model in ("post-eq", "predistort"):
                self.carry.last_gain = packet.gain
                break

    def finish(self):
        """Flush the trailing partial half-frame and return the result.

        The leftover tail (shorter than a full half-frame — the
        not-a-whole-number-of-half-frames case) runs through the core's
        truncated-tail handling: packets that still fit demodulate
        normally, the rest emit erasure windows.
        """
        if self._finished:
            raise RuntimeError("stream already finished")
        self._finished = True
        limit = len(self._buffer_shifted)
        local = self.carry.next_half_frame_start - self._buffer_base
        if 0 <= local < limit:
            self._sink.base = self._buffer_base
            cascade = self.demodulator._demod_half_frame(
                self._buffer_shifted,
                self._buffer_reference,
                local,
                limit,
                self._sink,
            )
            self._update_carry(cascade)
        self._buffer_shifted = np.zeros(0, dtype=complex)
        self._buffer_reference = np.zeros(0, dtype=complex)
        obs_metrics.counter_inc(
            "bsrx.stream_half_frames", self.carry.half_frames_done
        )
        return self._sink.result()

    # -- whole-capture convenience ------------------------------------------------

    def demodulate(self, shifted_samples, ambient_reference, half_frame_starts):
        """Whole-capture signature, chunked execution.

        ``shifted_samples``/``ambient_reference`` may be memory-mapped;
        only ``chunk_half_frames`` half-frames (plus the ragged tail) are
        materialised at a time.  Bit-identical to
        :meth:`BackscatterDemodulator.demodulate` on the same inputs.
        """
        if self._finished:
            raise RuntimeError("stream already finished")
        n = len(shifted_samples)
        if len(ambient_reference) != n:
            raise ValueError("capture and reference must be sample-aligned")
        starts = [int(s) for s in half_frame_starts]
        demod = self.demodulator
        span_needed = demod.half_frame_span
        sink = _DemodSink()
        chunk = self.chunk_half_frames
        with span("bsrx.stream") as sp:
            for i in range(0, len(starts), chunk):
                group = starts[i : i + chunk]
                valid = [s for s in group if s >= 0]
                if not valid:
                    continue
                base = min(valid)
                end = min(max(s + span_needed for s in valid), n)
                if end <= base:
                    continue
                shifted_chunk = np.asarray(
                    shifted_samples[base:end], dtype=complex
                )
                reference_chunk = np.asarray(
                    ambient_reference[base:end], dtype=complex
                )
                sink.base = base
                limit = end - base
                for s in group:
                    if s < 0:
                        continue
                    cascade = demod._demod_half_frame(
                        shifted_chunk, reference_chunk, s - base, limit, sink
                    )
                    self._sink = sink
                    self._update_carry(cascade)
                    self.carry.next_half_frame_start = s + self.half_frame_samples
                    if s + span_needed <= n:
                        self.carry.half_frames_done += 1
            sp.set(
                n_chunks=(len(starts) + chunk - 1) // chunk,
                chunk_half_frames=chunk,
            )
        self._finished = True
        obs_metrics.counter_inc(
            "bsrx.stream_half_frames", self.carry.half_frames_done
        )
        return sink.result()
