"""Backscatter-path channel estimation and equalisation.

The phase offset of paper Eq. 5 is the flat-channel special case; over a
multipath channel the rotation varies per subcarrier (the paper's
challenge C3: "the phase offset is varying on different subcarriers").
The tag's preamble symbol doubles as a full-band sounding sequence — chip
modulation spreads the LTE signal over the entire FFT band, so a single
preamble symbol excites every bin.  The channel is estimated by weighted
least squares with circular smoothing across bins: backscatter channels
are short (a few taps), so the true response varies slowly in frequency,
and the smoothing both averages noise and rides over the sounding
spectrum's occasional deep nulls.
"""

from __future__ import annotations

import numpy as np

from repro.lte.ofdm import row_fft, row_ifft

#: Default smoothing window (bins).  A W-bin boxcar tolerates delay spreads
#: up to ~N/W samples; channels here are <= a handful of taps.
DEFAULT_SMOOTH_BINS = 15


def _circular_smooth(values, window):
    """Circular moving average along a 1-D complex array."""
    window = int(window)
    if window <= 1:
        return values.copy()
    kernel = np.zeros(len(values))
    half = window // 2
    kernel[: half + 1] = 1.0
    kernel[-half:] = 1.0
    kernel /= kernel.sum()
    return np.fft.ifft(np.fft.fft(values) * np.fft.fft(kernel))


def estimate_channel_from_known(observed, expected, smooth_bins=DEFAULT_SMOOTH_BINS):
    """Per-bin channel from one symbol whose content is known.

    ``observed``/``expected`` are same-length time-domain useful symbols.
    Returns the length-N frequency response, computed as smoothed
    cross-spectrum over smoothed sounding power (weighted LS).
    """
    observed = np.asarray(observed, dtype=complex)
    expected = np.asarray(expected, dtype=complex)
    if observed.shape != expected.shape:
        raise ValueError("observed and expected must be the same length")
    y = np.fft.fft(observed)
    e = np.fft.fft(expected)
    cross = _circular_smooth(y * np.conj(e), smooth_bins)
    power = _circular_smooth((np.abs(e) ** 2).astype(complex), smooth_bins).real
    lam = 0.01 * float(np.mean(power)) + 1e-30
    return cross / (power + lam)


def equalize_symbol(observed, channel):
    """MMSE-style one-tap equalisation of a useful symbol, per bin."""
    observed = np.asarray(observed, dtype=complex)
    channel = np.asarray(channel, dtype=complex)
    if observed.shape != channel.shape:
        raise ValueError("symbol and channel must be the same length")
    y = np.fft.fft(observed)
    power = np.abs(channel) ** 2
    lam = 0.01 * float(np.mean(power)) + 1e-30
    equalized = y * np.conj(channel) / (power + lam)
    return np.fft.ifft(equalized)


# -- batched (leading tag axis) variants --------------------------------------
#
# Row-for-row bit-identical to the 1-D functions above: the transforms are
# the same pocketfft (see repro.lte.ofdm.row_fft), the smoothing kernel is
# shared across rows, and the regulariser is a per-row mean computed with
# the same pairwise summation as the 1-D case.  The batched cross-tag
# demodulator stacks every tag riding one ambient capture along axis 0.


def _circular_smooth_rows(values, window):
    """Circular moving average along the last axis of a complex array."""
    window = int(window)
    if window <= 1:
        return values.copy()
    n = values.shape[-1]
    kernel = np.zeros(n)
    half = window // 2
    kernel[: half + 1] = 1.0
    kernel[-half:] = 1.0
    kernel /= kernel.sum()
    return row_ifft(row_fft(values) * np.fft.fft(kernel))


def estimate_channel_from_known_batch(
    observed, expected, smooth_bins=DEFAULT_SMOOTH_BINS
):
    """Row-wise :func:`estimate_channel_from_known` over a tag axis.

    ``observed``/``expected`` are ``(n_tags, fft_size)`` stacks of useful
    symbols; returns the ``(n_tags, fft_size)`` frequency responses.
    """
    observed = np.asarray(observed, dtype=complex)
    expected = np.asarray(expected, dtype=complex)
    if observed.shape != expected.shape:
        raise ValueError("observed and expected must be the same shape")
    y = row_fft(observed)
    e = row_fft(expected)
    cross = _circular_smooth_rows(y * np.conj(e), smooth_bins)
    power = _circular_smooth_rows((np.abs(e) ** 2).astype(complex), smooth_bins).real
    lam = 0.01 * np.mean(power, axis=-1, keepdims=True) + 1e-30
    return cross / (power + lam)


def equalize_symbol_batch(observed, channel):
    """Row-wise :func:`equalize_symbol` over a tag axis."""
    observed = np.asarray(observed, dtype=complex)
    channel = np.asarray(channel, dtype=complex)
    if observed.shape != channel.shape:
        raise ValueError("symbols and channels must be the same shape")
    y = row_fft(observed)
    power = np.abs(channel) ** 2
    lam = 0.01 * np.mean(power, axis=-1, keepdims=True) + 1e-30
    equalized = y * np.conj(channel) / (power + lam)
    return row_ifft(equalized)
