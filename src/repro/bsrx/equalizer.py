"""Backscatter-path channel estimation and equalisation.

The phase offset of paper Eq. 5 is the flat-channel special case; over a
multipath channel the rotation varies per subcarrier (the paper's
challenge C3: "the phase offset is varying on different subcarriers").
The tag's preamble symbol doubles as a full-band sounding sequence — chip
modulation spreads the LTE signal over the entire FFT band, so a single
preamble symbol excites every bin.  The channel is estimated by weighted
least squares with circular smoothing across bins: backscatter channels
are short (a few taps), so the true response varies slowly in frequency,
and the smoothing both averages noise and rides over the sounding
spectrum's occasional deep nulls.
"""

from __future__ import annotations

import numpy as np

#: Default smoothing window (bins).  A W-bin boxcar tolerates delay spreads
#: up to ~N/W samples; channels here are <= a handful of taps.
DEFAULT_SMOOTH_BINS = 15


def _circular_smooth(values, window):
    """Circular moving average along a 1-D complex array."""
    window = int(window)
    if window <= 1:
        return values.copy()
    kernel = np.zeros(len(values))
    half = window // 2
    kernel[: half + 1] = 1.0
    kernel[-half:] = 1.0
    kernel /= kernel.sum()
    return np.fft.ifft(np.fft.fft(values) * np.fft.fft(kernel))


def estimate_channel_from_known(observed, expected, smooth_bins=DEFAULT_SMOOTH_BINS):
    """Per-bin channel from one symbol whose content is known.

    ``observed``/``expected`` are same-length time-domain useful symbols.
    Returns the length-N frequency response, computed as smoothed
    cross-spectrum over smoothed sounding power (weighted LS).
    """
    observed = np.asarray(observed, dtype=complex)
    expected = np.asarray(expected, dtype=complex)
    if observed.shape != expected.shape:
        raise ValueError("observed and expected must be the same length")
    y = np.fft.fft(observed)
    e = np.fft.fft(expected)
    cross = _circular_smooth(y * np.conj(e), smooth_bins)
    power = _circular_smooth((np.abs(e) ** 2).astype(complex), smooth_bins).real
    lam = 0.01 * float(np.mean(power)) + 1e-30
    return cross / (power + lam)


def equalize_symbol(observed, channel):
    """MMSE-style one-tap equalisation of a useful symbol, per bin."""
    observed = np.asarray(observed, dtype=complex)
    channel = np.asarray(channel, dtype=complex)
    if observed.shape != channel.shape:
        raise ValueError("symbol and channel must be the same length")
    y = np.fft.fft(observed)
    power = np.abs(channel) ** 2
    lam = 0.01 * float(np.mean(power)) + 1e-30
    equalized = y * np.conj(channel) / (power + lam)
    return np.fft.ifft(equalized)
