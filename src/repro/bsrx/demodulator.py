"""Parallel chip demodulation of the hybrid LTE signal (paper §3.3.3).

For every packet the demodulator

1. locates the preamble (modulation offset, Eq. 7) and estimates the
   backscatter channel — the general, frequency-selective form of the
   paper's phase offset phi (Eq. 5/6, challenge C3);
2. derotates/equalises the per-unit products;
3. slices chips by the sign of the matched-filter output.

Multipath sits on *both* hops of the cascade (eNodeB->tag and tag->UE),
and chip multiplication does not commute with filtering, so one linear
equaliser cannot fix both.  Physically the tag is near one endpoint
(paper Fig. 19: "within 15 feet of either eNodeB or UE"), which makes one
hop near-flat; the receiver therefore runs two hypotheses per packet and
keeps whichever reproduces the known preamble better:

* **post-EQ** — reference is the ambient waveform ``x``; the preamble
  sounds the (out-hop) channel and data symbols are equalised by it.
  Exact when the eNodeB->tag hop is flat.
* **pre-distorted reference** — the cascade response is estimated from the
  tag's *unmodulated* reflection of the PSS/SSS symbols (the tag never
  modulates those, so they arrive as a clean sounding every 5 ms); the
  reference becomes ``h_cascade * x`` and decisions are straight matched
  filtering.  Exact when the tag->UE hop is flat.

The reconstruction reference ``x_n`` (the ambient LTE samples) comes from
the UE's normal LTE decode of the direct path: the UE re-encodes the
transport blocks it just decoded and re-synthesises the time-domain frame.
The end-to-end system (:mod:`repro.core.system`) wires that in.

Three entry points share one per-half-frame core:

* :meth:`BackscatterDemodulator.demodulate` — one tag, whole capture;
* :meth:`BackscatterDemodulator.demodulate_many` — every tag riding one
  shared ambient capture at once, stacked along a leading tag axis so
  the FFT/convolution work runs as batched transforms (bit-identical to
  per-tag :meth:`~BackscatterDemodulator.demodulate`);
* :class:`repro.bsrx.streaming.StreamingDemodulator` — chunked
  consumption of arbitrarily long captures in bounded memory.

A capture whose tail is shorter than a full half-frame (every streaming
chunk boundary, and any externally truncated recording) is handled
explicitly: packets whose sounding/preamble/data symbols run past the end
emit erasure windows (placeholder bits the accounting layer excludes)
instead of being silently dropped mid-grid.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bsrx.equalizer import (
    equalize_symbol,
    equalize_symbol_batch,
    estimate_channel_from_known,
    estimate_channel_from_known_batch,
)
from repro.bsrx.mod_offset import (
    OffsetEstimate,
    find_modulation_offset,
    find_modulation_offset_batch,
)
from repro.lte.ofdm import frame_layout, row_fft, row_ifft
from repro.lte.params import LteParams
from repro.lte.pss import PSS_SYMBOL_IN_SLOT
from repro.lte.resource_grid import symbol_index
from repro.lte.sss import SSS_SYMBOL_IN_SLOT
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.tag.framing import preamble_bits, slot_plan


def window_snr_db(soft, reference_power=None):
    """Post-detection SNR proxy of one window's matched-filter outputs.

    For ±1 chips the soft values are ``a_k * b_k + n_k``, so the
    second-moment method estimates the signal amplitude as ``mean(|s|)``
    and the noise power as ``mean(s^2) - mean(|s|)^2``.  A clean window
    has tightly clustered ``|s|`` (noise power near zero, SNR large); a
    jammed window's soft values scatter and the ratio collapses — the
    statistic the per-window erasure escalation gates on.

    The matched-filter output scales with the ambient's per-chip power
    ``|x_k|^2``, which fluctuates strongly across an OFDM symbol — raw
    soft values therefore scatter even on a noiseless link.  Pass that
    chip power as ``reference_power`` to divide it out first; the
    normalised values cluster at ``±b`` per chip and the proxy then
    measures link corruption, not ambient amplitude statistics.
    """
    soft = np.asarray(soft, dtype=float)
    if len(soft) == 0:
        return float("-inf")
    if reference_power is not None:
        reference_power = np.asarray(reference_power, dtype=float)
        floor = 1e-12 * float(np.mean(reference_power))
        soft = soft / np.maximum(reference_power, floor if floor > 0 else 1.0)
    amplitude = float(np.mean(np.abs(soft)))
    if amplitude == 0.0:
        return float("-inf")
    power = float(np.mean(soft**2))
    noise = max(power - amplitude**2, 1e-12 * power)
    return float(10.0 * np.log10(amplitude**2 / noise))


@dataclass
class PacketRecord:
    """Per-packet demodulation bookkeeping."""

    half_frame_start: int
    slot: int
    offset: int
    gain: complex
    metric: float
    model: str = "post-eq"
    preamble_errors: int = 0
    data_starts: list = field(default_factory=list)


@dataclass
class BsDemodResult:
    """Recovered chip stream for one capture."""

    bits: np.ndarray  # concatenated data bits, packet order
    soft: np.ndarray  # matched-filter soft values, same order
    starts: np.ndarray  # absolute sample index of each data window
    window_bits: list = field(default_factory=list)  # per-window bit arrays
    #: Per-window erasure flags: True where the packet's preamble
    #: correlation collapsed (sync lost) and the bits are placeholders.
    window_erased: list = field(default_factory=list)
    packets: list = field(default_factory=list)

    @property
    def n_data_windows(self):
        return len(self.window_bits)

    @property
    def n_erased_windows(self):
        return int(sum(bool(flag) for flag in self.window_erased))


class _DemodSink:
    """Accumulates one capture's windows/packets across half-frame calls.

    ``base`` is added to every emitted sample index — the streaming path
    hands the core a chunk-local view and shifts results back to absolute
    capture coordinates through it.
    """

    __slots__ = (
        "base",
        "all_bits",
        "all_soft",
        "starts",
        "window_bits",
        "window_erased",
        "packets",
        "truncated_windows",
    )

    def __init__(self):
        self.base = 0
        self.all_bits = []
        self.all_soft = []
        self.starts = []
        self.window_bits = []
        self.window_erased = []
        self.packets = []
        self.truncated_windows = 0

    def add_window(self, bits, soft, start, erased, record):
        absolute = self.base + int(start)
        self.all_bits.append(bits)
        self.all_soft.append(soft)
        self.window_bits.append(bits)
        self.window_erased.append(erased)
        self.starts.append(absolute)
        record.data_starts.append(absolute)

    def result(self):
        if self.all_bits:
            bits = np.concatenate(self.all_bits)
            soft = np.concatenate(self.all_soft)
        else:
            bits = np.zeros(0, dtype=np.int8)
            soft = np.zeros(0)
        obs_metrics.counter_inc("bsrx.packets", len(self.packets))
        obs_metrics.counter_inc("bsrx.windows", len(self.window_bits))
        n_erased = int(sum(bool(flag) for flag in self.window_erased))
        if n_erased:
            obs_metrics.counter_inc("bsrx.erasures", n_erased)
        if self.truncated_windows:
            obs_metrics.counter_inc("bsrx.truncated_windows", self.truncated_windows)
        return BsDemodResult(
            bits=bits,
            soft=soft,
            starts=np.asarray(self.starts, dtype=np.int64),
            window_bits=self.window_bits,
            window_erased=self.window_erased,
            packets=self.packets,
        )


class BackscatterDemodulator:
    """Demodulate tag chips from a shifted-band capture."""

    def __init__(
        self, params, search_slack=None, erasure_threshold=None, snr_gate_db=None
    ):
        self.params = (
            params if isinstance(params, LteParams) else LteParams.from_bandwidth(params)
        )
        self.n_chips = self.params.n_subcarriers
        self.nominal_offset = (self.params.fft_size - self.n_chips) // 2
        # By default search the whole guard either side of nominal.
        self.search_slack = (
            int(search_slack) if search_slack is not None else self.nominal_offset
        )
        self._preamble = preamble_bits(self.n_chips)
        self._preamble_signs = (2 * self._preamble - 1).astype(float)
        #: Erasure detection: when the better of the two per-packet
        #: hypotheses still mis-slices more than this fraction of the
        #: *known* preamble, the receiver has lost sync for that packet
        #: (a random guess errs ~50 %); its data windows are emitted as
        #: erasures instead of garbage bits, and demodulation re-acquires
        #: at the next PSS-derived half-frame boundary.  ``None`` keeps
        #: the legacy always-emit behaviour.
        self.erasure_threshold = (
            float(erasure_threshold) if erasure_threshold is not None else None
        )
        #: Per-window erasure escalation: even when a packet's preamble
        #: passed, a *data* window whose post-detection SNR proxy
        #: (:func:`window_snr_db`) falls below this many dB is emitted as
        #: an erasure instead of bits — a jammer burst inside an otherwise
        #: healthy packet then feeds the ARQ path instead of the BER.
        #: ``None`` (default) disables the gate (bit-identical legacy).
        self.snr_gate_db = float(snr_gate_db) if snr_gate_db is not None else None
        # Cached per-frame symbol layout: the inner loops below look up a
        # useful-symbol offset per symbol per packet, which was an O(sym)
        # Python walk through LteParams.useful_start.
        self._useful_starts = frame_layout(self.params).useful_starts
        #: Samples one half-frame's demodulation reaches past its start
        #: (the end of slot 9's last useful symbol == the half-frame
        #: stride, so consecutive half-frames tile the capture exactly).
        self.half_frame_span = (
            int(self._useful_starts[symbol_index(9, 6)]) + self.params.fft_size
        )

    # -- window helpers ----------------------------------------------------------

    def _useful(self, samples, half_start, slot, sym):
        start = half_start + int(self._useful_starts[symbol_index(slot, sym)])
        return samples[start : start + self.params.fft_size], start

    def _chip_waveform(self, offset):
        """±1 chips over one useful symbol: preamble at ``offset``, idle +1."""
        chips = np.ones(self.params.fft_size)
        chips[offset : offset + self.n_chips] = self._preamble_signs
        return chips

    def _chip_waveform_batch(self, offsets):
        """Per-tag ±1 chip waveforms: row ``t``'s preamble at ``offsets[t]``."""
        offsets = np.asarray(offsets)
        chips = np.ones((len(offsets), self.params.fft_size))
        cols = offsets[:, None] + np.arange(self.n_chips)
        chips[np.arange(len(offsets))[:, None], cols] = self._preamble_signs
        return chips

    def _cascade_channel(self, shifted, reference, half_start):
        """Sound the cascade on the tag's unmodulated PSS/SSS reflection."""
        estimates = []
        for sym in (SSS_SYMBOL_IN_SLOT, PSS_SYMBOL_IN_SLOT):
            y, _ = self._useful(shifted, half_start, 0, sym)
            x, _ = self._useful(reference, half_start, 0, sym)
            estimates.append(estimate_channel_from_known(y, x))
        return np.mean(estimates, axis=0)

    def _predistorted(self, x, cascade):
        """Reference as the tag would have seen it: cascade-filtered ambient."""
        return np.fft.ifft(np.fft.fft(x) * cascade)

    # -- per-packet models --------------------------------------------------------

    def _preamble_error_count(self, soft):
        bits = (soft > 0).astype(np.int8)
        return int(np.sum(bits != self._preamble))

    def _model_post_eq(self, y0, x0):
        """Hypothesis A: flat in-hop; preamble sounds the out-hop channel."""
        estimate = find_modulation_offset(
            y0, x0, self._preamble, self.nominal_offset, self.search_slack
        )
        expected = x0 * self._chip_waveform(estimate.offset)
        channel = estimate_channel_from_known(y0, expected)
        y_eq = equalize_symbol(y0, channel)
        lo, hi = estimate.offset, estimate.offset + self.n_chips
        soft = np.real(y_eq[lo:hi] * np.conj(x0[lo:hi]))
        errors = self._preamble_error_count(soft)
        return estimate, channel, errors

    def _model_predistort(self, y0, x0, cascade):
        """Hypothesis B: flat out-hop; reference carries the cascade."""
        w0 = self._predistorted(x0, cascade)
        estimate = find_modulation_offset(
            y0, w0, self._preamble, self.nominal_offset, self.search_slack
        )
        lo, hi = estimate.offset, estimate.offset + self.n_chips
        soft = np.real(
            np.conj(estimate.gain) * y0[lo:hi] * np.conj(w0[lo:hi])
        )
        errors = self._preamble_error_count(soft)
        return estimate, errors

    # -- truncated-tail handling --------------------------------------------------

    def _emit_erased_window(self, sink, record, window_start):
        bits = np.zeros(self.n_chips, dtype=np.int8)
        sink.add_window(bits, np.zeros(self.n_chips), window_start, True, record)

    def _emit_truncated_packet(self, sink, slot_symbols, half_start, limit):
        """Erase a packet whose sounding or preamble ran past the capture.

        Only windows that start inside the capture are emitted (a window
        entirely beyond the recording never existed as far as accounting
        is concerned); each counts as an erasure, not a loss of sync.
        """
        slot = slot_symbols[0][0]
        record = PacketRecord(
            half_frame_start=sink.base + int(half_start),
            slot=slot,
            offset=self.nominal_offset,
            gain=0j,
            metric=0.0,
            model="truncated",
            preamble_errors=self.n_chips,
        )
        for slot_, sym in slot_symbols[1:]:
            abs_start = half_start + int(self._useful_starts[symbol_index(slot_, sym)])
            window_start = abs_start + self.nominal_offset
            if window_start >= limit:
                continue
            self._emit_erased_window(sink, record, window_start)
            sink.truncated_windows += 1
        if record.data_starts:
            sink.packets.append(record)

    # -- per-half-frame core ------------------------------------------------------

    def _demod_half_frame(self, shifted, reference, half_start, limit, sink):
        """Demodulate one half-frame of a (possibly chunk-local) capture.

        ``limit`` is the number of valid samples in ``shifted``/
        ``reference``; a half-frame reaching past it is the truncated-tail
        case — packets that still fit demodulate normally, the rest emit
        erasure windows.  Emitted indices are shifted by ``sink.base``.
        """
        if half_start < 0:
            return None
        fft = self.params.fft_size
        sounding_end = (
            half_start
            + int(self._useful_starts[symbol_index(0, PSS_SYMBOL_IN_SLOT)])
            + fft
        )
        have_sounding = sounding_end <= limit
        cascade = None
        if have_sounding:
            with span("bsrx.sync"):
                cascade = self._cascade_channel(shifted, reference, half_start)
        for slot_symbols in slot_plan():
            slot, sym0 = slot_symbols[0]
            pre_start = half_start + int(
                self._useful_starts[symbol_index(slot, sym0)]
            )
            if not have_sounding or pre_start + fft > limit:
                self._emit_truncated_packet(sink, slot_symbols, half_start, limit)
                continue
            y0, _ = self._useful(shifted, half_start, slot, sym0)
            x0, _ = self._useful(reference, half_start, slot, sym0)

            with span("bsrx.phase_offset"):
                est_a, channel_a, errors_a = self._model_post_eq(y0, x0)
                est_b, errors_b = self._model_predistort(y0, x0, cascade)

            preamble_errors = min(errors_a, errors_b)
            if (
                self.erasure_threshold is not None
                and preamble_errors > self.erasure_threshold * self.n_chips
            ):
                # Preamble correlation collapsed: sync is lost for this
                # packet.  Emit its data windows as erasures (nominal
                # offset, placeholder bits) so the accounting layer can
                # exclude them, then continue at the next packet — the
                # half-frame grid is PSS-derived, so the next boundary
                # is the re-acquisition point.
                record = PacketRecord(
                    half_frame_start=sink.base + int(half_start),
                    slot=slot,
                    offset=self.nominal_offset,
                    gain=0j,
                    metric=0.0,
                    model="erased",
                    preamble_errors=preamble_errors,
                )
                for slot_, sym in slot_symbols[1:]:
                    abs_start = half_start + int(
                        self._useful_starts[symbol_index(slot_, sym)]
                    )
                    window_start = abs_start + self.nominal_offset
                    if window_start >= limit:
                        continue
                    self._emit_erased_window(sink, record, window_start)
                sink.packets.append(record)
                continue

            use_post_eq = errors_a <= errors_b
            estimate = est_a if use_post_eq else est_b
            record = PacketRecord(
                half_frame_start=sink.base + int(half_start),
                slot=slot,
                offset=estimate.offset,
                gain=estimate.gain,
                metric=estimate.metric,
                model="post-eq" if use_post_eq else "predistort",
                preamble_errors=min(errors_a, errors_b),
            )
            derotate_b = np.conj(est_b.gain)
            for slot_, sym in slot_symbols[1:]:
                abs_start = half_start + int(
                    self._useful_starts[symbol_index(slot_, sym)]
                )
                if abs_start + fft > limit:
                    # Data symbol truncated mid-packet: erase it rather
                    # than slicing a short window into garbage bits.
                    window_start = abs_start + self.nominal_offset
                    if window_start < limit:
                        self._emit_erased_window(sink, record, window_start)
                        sink.truncated_windows += 1
                    continue
                y, _ = self._useful(shifted, half_start, slot_, sym)
                x, _ = self._useful(reference, half_start, slot_, sym)
                lo = estimate.offset
                hi = lo + self.n_chips
                with span("bsrx.equalise"):
                    if use_post_eq:
                        y_eq = equalize_symbol(y, channel_a)
                        soft = np.real(y_eq[lo:hi] * np.conj(x[lo:hi]))
                    else:
                        w = self._predistorted(x, cascade)
                        soft = np.real(
                            derotate_b * y[lo:hi] * np.conj(w[lo:hi])
                        )
                if (
                    self.snr_gate_db is not None
                    and window_snr_db(soft, np.abs(x[lo:hi]) ** 2)
                    < self.snr_gate_db
                ):
                    # SNR-gated erasure escalation: a jammed data symbol
                    # inside an otherwise healthy packet becomes an
                    # erasure (ARQ-visible) instead of garbage bits.
                    self._emit_erased_window(sink, record, abs_start + lo)
                    obs_metrics.counter_inc("bsrx.snr_erasures")
                    continue
                with span("bsrx.demod"):
                    bits = (soft > 0).astype(np.int8)
                sink.add_window(bits, soft, abs_start + lo, False, record)
            sink.packets.append(record)
        return cascade

    # -- main entries --------------------------------------------------------------

    def demodulate(self, shifted_samples, ambient_reference, half_frame_starts):
        """Run the pipeline over every packet of a capture.

        ``half_frame_starts`` are the UE's (PSS-derived) half-frame
        boundaries, sample indices into both input arrays.
        """
        shifted_samples = np.asarray(shifted_samples, dtype=complex)
        ambient_reference = np.asarray(ambient_reference, dtype=complex)
        if shifted_samples.shape != ambient_reference.shape:
            raise ValueError("capture and reference must be sample-aligned")

        sink = _DemodSink()
        limit = len(shifted_samples)
        for half_start in half_frame_starts:
            self._demod_half_frame(
                shifted_samples, ambient_reference, int(half_start), limit, sink
            )
        return sink.result()

    def demodulate_many(self, shifted_stack, reference_stack, half_frame_starts):
        """Demodulate every tag riding one shared ambient capture at once.

        ``shifted_stack``/``reference_stack`` are ``(n_tags, n_samples)``
        stacks — row ``t`` is what tag ``t``'s UE captured and
        reconstructed.  All tags share the PSS-derived half-frame grid of
        the common ambient, so the per-symbol FFTs, channel estimates,
        offset searches and matched filters run as single batched
        transforms with a leading tag axis.

        Returns one :class:`BsDemodResult` per row, each bit-identical to
        ``demodulate(shifted_stack[t], reference_stack[t], ...)`` (the
        batched helpers are row-for-row the same pocketfft transforms;
        golden tests pin the equality).
        """
        shifted_stack = np.asarray(shifted_stack, dtype=complex)
        reference_stack = np.asarray(reference_stack, dtype=complex)
        if shifted_stack.ndim != 2:
            raise ValueError("expected (n_tags, n_samples) stacks")
        if shifted_stack.shape != reference_stack.shape:
            raise ValueError("captures and references must be sample-aligned")

        n_tags, limit = shifted_stack.shape
        sinks = [_DemodSink() for _ in range(n_tags)]
        for half_start in half_frame_starts:
            half_start = int(half_start)
            if half_start < 0:
                continue
            if half_start + self.half_frame_span > limit:
                # Truncated tail: the bookkeeping dominates the math here,
                # so run the scalar core per tag (identical by
                # construction).
                for t in range(n_tags):
                    self._demod_half_frame(
                        shifted_stack[t], reference_stack[t], half_start, limit,
                        sinks[t],
                    )
                continue
            self._demod_half_frame_batch(
                shifted_stack, reference_stack, half_start, sinks
            )
        return [sink.result() for sink in sinks]

    # -- batched per-half-frame core ----------------------------------------------

    def _demod_half_frame_batch(self, shifted, reference, half_start, sinks):
        """One full half-frame for every tag, stacked along axis 0."""
        fft = self.params.fft_size
        n_tags = shifted.shape[0]
        rows = np.arange(n_tags)
        with span("bsrx.sync"):
            estimates = []
            for sym in (SSS_SYMBOL_IN_SLOT, PSS_SYMBOL_IN_SLOT):
                start = half_start + int(self._useful_starts[symbol_index(0, sym)])
                estimates.append(
                    estimate_channel_from_known_batch(
                        shifted[:, start : start + fft],
                        reference[:, start : start + fft],
                    )
                )
            cascade = np.mean(estimates, axis=0)

        for slot_symbols in slot_plan():
            slot, sym0 = slot_symbols[0]
            p0 = half_start + int(self._useful_starts[symbol_index(slot, sym0)])
            y0 = shifted[:, p0 : p0 + fft]
            x0 = reference[:, p0 : p0 + fft]

            with span("bsrx.phase_offset"):
                # Hypothesis A (post-EQ) for every tag at once.
                est_a = find_modulation_offset_batch(
                    y0, x0, self._preamble, self.nominal_offset, self.search_slack
                )
                expected = x0 * self._chip_waveform_batch(est_a.offsets)
                channel_a = estimate_channel_from_known_batch(y0, expected)
                y_eq = equalize_symbol_batch(y0, channel_a)
                cols_a = est_a.offsets[:, None] + np.arange(self.n_chips)
                soft_a = np.real(
                    y_eq[rows[:, None], cols_a] * np.conj(x0[rows[:, None], cols_a])
                )
                errors_a = np.sum(
                    (soft_a > 0).astype(np.int8) != self._preamble, axis=1
                )

                # Hypothesis B (pre-distorted reference) for every tag.
                w0 = row_ifft(row_fft(x0) * cascade)
                est_b = find_modulation_offset_batch(
                    y0, w0, self._preamble, self.nominal_offset, self.search_slack
                )
                cols_b = est_b.offsets[:, None] + np.arange(self.n_chips)
                soft_b = np.real(
                    np.conj(est_b.gains)[:, None]
                    * y0[rows[:, None], cols_b]
                    * np.conj(w0[rows[:, None], cols_b])
                )
                errors_b = np.sum(
                    (soft_b > 0).astype(np.int8) != self._preamble, axis=1
                )

            preamble_errors = np.minimum(errors_a, errors_b)
            use_post = errors_a <= errors_b
            if self.erasure_threshold is not None:
                erased = preamble_errors > self.erasure_threshold * self.n_chips
            else:
                erased = np.zeros(n_tags, dtype=bool)

            records = [None] * n_tags
            for t in range(n_tags):
                sink = sinks[t]
                if erased[t]:
                    record = PacketRecord(
                        half_frame_start=sink.base + half_start,
                        slot=slot,
                        offset=self.nominal_offset,
                        gain=0j,
                        metric=0.0,
                        model="erased",
                        preamble_errors=int(preamble_errors[t]),
                    )
                    for slot_, sym in slot_symbols[1:]:
                        abs_start = half_start + int(
                            self._useful_starts[symbol_index(slot_, sym)]
                        )
                        self._emit_erased_window(
                            sink, record, abs_start + self.nominal_offset
                        )
                    sink.packets.append(record)
                else:
                    est = est_a if use_post[t] else est_b
                    records[t] = PacketRecord(
                        half_frame_start=sink.base + half_start,
                        slot=slot,
                        offset=int(est.offsets[t]),
                        gain=complex(est.gains[t]),
                        metric=float(est.metrics[t]),
                        model="post-eq" if use_post[t] else "predistort",
                        preamble_errors=int(preamble_errors[t]),
                    )

            live = ~erased
            post_idx = np.flatnonzero(live & use_post)
            pre_idx = np.flatnonzero(live & ~use_post)
            if not len(post_idx) and not len(pre_idx):
                continue
            derotate_b = np.conj(est_b.gains)

            for slot_, sym in slot_symbols[1:]:
                abs_start = half_start + int(
                    self._useful_starts[symbol_index(slot_, sym)]
                )
                y = shifted[:, abs_start : abs_start + fft]
                x = reference[:, abs_start : abs_start + fft]
                soft_all = np.zeros((n_tags, self.n_chips))
                ref_power_all = np.zeros((n_tags, self.n_chips))
                with span("bsrx.equalise"):
                    if len(post_idx):
                        sub = np.arange(len(post_idx))[:, None]
                        cols = cols_a[post_idx]
                        y_eq = equalize_symbol_batch(
                            y[post_idx], channel_a[post_idx]
                        )
                        xs = x[post_idx]
                        soft_all[post_idx] = np.real(
                            y_eq[sub, cols] * np.conj(xs[sub, cols])
                        )
                        ref_power_all[post_idx] = np.abs(xs[sub, cols]) ** 2
                    if len(pre_idx):
                        sub = np.arange(len(pre_idx))[:, None]
                        cols = cols_b[pre_idx]
                        xp = x[pre_idx]
                        w = row_ifft(row_fft(xp) * cascade[pre_idx])
                        ys = y[pre_idx]
                        soft_all[pre_idx] = np.real(
                            derotate_b[pre_idx][:, None]
                            * ys[sub, cols]
                            * np.conj(w[sub, cols])
                        )
                        ref_power_all[pre_idx] = np.abs(xp[sub, cols]) ** 2
                with span("bsrx.demod"):
                    bits_all = (soft_all > 0).astype(np.int8)
                for t in range(n_tags):
                    record = records[t]
                    if record is None:
                        continue
                    if (
                        self.snr_gate_db is not None
                        and window_snr_db(soft_all[t], ref_power_all[t])
                        < self.snr_gate_db
                    ):
                        # Same SNR-gated escalation as the scalar path, so
                        # batch and scalar demod stay window-for-window
                        # identical with the gate enabled.
                        self._emit_erased_window(
                            sinks[t], record, abs_start + record.offset
                        )
                        obs_metrics.counter_inc("bsrx.snr_erasures")
                        continue
                    sinks[t].add_window(
                        bits_all[t],
                        soft_all[t],
                        abs_start + record.offset,
                        False,
                        record,
                    )
            for t in range(n_tags):
                if records[t] is not None:
                    sinks[t].packets.append(records[t])
