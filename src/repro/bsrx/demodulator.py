"""Parallel chip demodulation of the hybrid LTE signal (paper §3.3.3).

For every packet the demodulator

1. locates the preamble (modulation offset, Eq. 7) and estimates the
   backscatter channel — the general, frequency-selective form of the
   paper's phase offset phi (Eq. 5/6, challenge C3);
2. derotates/equalises the per-unit products;
3. slices chips by the sign of the matched-filter output.

Multipath sits on *both* hops of the cascade (eNodeB->tag and tag->UE),
and chip multiplication does not commute with filtering, so one linear
equaliser cannot fix both.  Physically the tag is near one endpoint
(paper Fig. 19: "within 15 feet of either eNodeB or UE"), which makes one
hop near-flat; the receiver therefore runs two hypotheses per packet and
keeps whichever reproduces the known preamble better:

* **post-EQ** — reference is the ambient waveform ``x``; the preamble
  sounds the (out-hop) channel and data symbols are equalised by it.
  Exact when the eNodeB->tag hop is flat.
* **pre-distorted reference** — the cascade response is estimated from the
  tag's *unmodulated* reflection of the PSS/SSS symbols (the tag never
  modulates those, so they arrive as a clean sounding every 5 ms); the
  reference becomes ``h_cascade * x`` and decisions are straight matched
  filtering.  Exact when the tag->UE hop is flat.

The reconstruction reference ``x_n`` (the ambient LTE samples) comes from
the UE's normal LTE decode of the direct path: the UE re-encodes the
transport blocks it just decoded and re-synthesises the time-domain frame.
The end-to-end system (:mod:`repro.core.system`) wires that in.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bsrx.equalizer import equalize_symbol, estimate_channel_from_known
from repro.bsrx.mod_offset import find_modulation_offset
from repro.lte.ofdm import frame_layout
from repro.lte.params import LteParams
from repro.lte.pss import PSS_SYMBOL_IN_SLOT
from repro.lte.resource_grid import symbol_index
from repro.lte.sss import SSS_SYMBOL_IN_SLOT
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.tag.framing import preamble_bits, slot_plan


@dataclass
class PacketRecord:
    """Per-packet demodulation bookkeeping."""

    half_frame_start: int
    slot: int
    offset: int
    gain: complex
    metric: float
    model: str = "post-eq"
    preamble_errors: int = 0
    data_starts: list = field(default_factory=list)


@dataclass
class BsDemodResult:
    """Recovered chip stream for one capture."""

    bits: np.ndarray  # concatenated data bits, packet order
    soft: np.ndarray  # matched-filter soft values, same order
    starts: np.ndarray  # absolute sample index of each data window
    window_bits: list = field(default_factory=list)  # per-window bit arrays
    #: Per-window erasure flags: True where the packet's preamble
    #: correlation collapsed (sync lost) and the bits are placeholders.
    window_erased: list = field(default_factory=list)
    packets: list = field(default_factory=list)

    @property
    def n_data_windows(self):
        return len(self.window_bits)

    @property
    def n_erased_windows(self):
        return int(sum(bool(flag) for flag in self.window_erased))


class BackscatterDemodulator:
    """Demodulate tag chips from a shifted-band capture."""

    def __init__(self, params, search_slack=None, erasure_threshold=None):
        self.params = (
            params if isinstance(params, LteParams) else LteParams.from_bandwidth(params)
        )
        self.n_chips = self.params.n_subcarriers
        self.nominal_offset = (self.params.fft_size - self.n_chips) // 2
        # By default search the whole guard either side of nominal.
        self.search_slack = (
            int(search_slack) if search_slack is not None else self.nominal_offset
        )
        self._preamble = preamble_bits(self.n_chips)
        self._preamble_signs = (2 * self._preamble - 1).astype(float)
        #: Erasure detection: when the better of the two per-packet
        #: hypotheses still mis-slices more than this fraction of the
        #: *known* preamble, the receiver has lost sync for that packet
        #: (a random guess errs ~50 %); its data windows are emitted as
        #: erasures instead of garbage bits, and demodulation re-acquires
        #: at the next PSS-derived half-frame boundary.  ``None`` keeps
        #: the legacy always-emit behaviour.
        self.erasure_threshold = (
            float(erasure_threshold) if erasure_threshold is not None else None
        )
        # Cached per-frame symbol layout: the inner loops below look up a
        # useful-symbol offset per symbol per packet, which was an O(sym)
        # Python walk through LteParams.useful_start.
        self._useful_starts = frame_layout(self.params).useful_starts

    # -- window helpers ----------------------------------------------------------

    def _useful(self, samples, half_start, slot, sym):
        start = half_start + int(self._useful_starts[symbol_index(slot, sym)])
        return samples[start : start + self.params.fft_size], start

    def _chip_waveform(self, offset):
        """±1 chips over one useful symbol: preamble at ``offset``, idle +1."""
        chips = np.ones(self.params.fft_size)
        chips[offset : offset + self.n_chips] = self._preamble_signs
        return chips

    def _cascade_channel(self, shifted, reference, half_start):
        """Sound the cascade on the tag's unmodulated PSS/SSS reflection."""
        estimates = []
        for sym in (SSS_SYMBOL_IN_SLOT, PSS_SYMBOL_IN_SLOT):
            y, _ = self._useful(shifted, half_start, 0, sym)
            x, _ = self._useful(reference, half_start, 0, sym)
            estimates.append(estimate_channel_from_known(y, x))
        return np.mean(estimates, axis=0)

    def _predistorted(self, x, cascade):
        """Reference as the tag would have seen it: cascade-filtered ambient."""
        return np.fft.ifft(np.fft.fft(x) * cascade)

    # -- per-packet models --------------------------------------------------------

    def _preamble_error_count(self, soft):
        bits = (soft > 0).astype(np.int8)
        return int(np.sum(bits != self._preamble))

    def _model_post_eq(self, y0, x0):
        """Hypothesis A: flat in-hop; preamble sounds the out-hop channel."""
        estimate = find_modulation_offset(
            y0, x0, self._preamble, self.nominal_offset, self.search_slack
        )
        expected = x0 * self._chip_waveform(estimate.offset)
        channel = estimate_channel_from_known(y0, expected)
        y_eq = equalize_symbol(y0, channel)
        lo, hi = estimate.offset, estimate.offset + self.n_chips
        soft = np.real(y_eq[lo:hi] * np.conj(x0[lo:hi]))
        errors = self._preamble_error_count(soft)
        return estimate, channel, errors

    def _model_predistort(self, y0, x0, cascade):
        """Hypothesis B: flat out-hop; reference carries the cascade."""
        w0 = self._predistorted(x0, cascade)
        estimate = find_modulation_offset(
            y0, w0, self._preamble, self.nominal_offset, self.search_slack
        )
        lo, hi = estimate.offset, estimate.offset + self.n_chips
        soft = np.real(
            np.conj(estimate.gain) * y0[lo:hi] * np.conj(w0[lo:hi])
        )
        errors = self._preamble_error_count(soft)
        return estimate, errors

    # -- main entry ----------------------------------------------------------------

    def demodulate(self, shifted_samples, ambient_reference, half_frame_starts):
        """Run the pipeline over every packet of a capture.

        ``half_frame_starts`` are the UE's (PSS-derived) half-frame
        boundaries, sample indices into both input arrays.
        """
        shifted_samples = np.asarray(shifted_samples, dtype=complex)
        ambient_reference = np.asarray(ambient_reference, dtype=complex)
        if shifted_samples.shape != ambient_reference.shape:
            raise ValueError("capture and reference must be sample-aligned")

        n = len(shifted_samples)
        fft = self.params.fft_size
        all_bits = []
        all_soft = []
        starts = []
        window_bits = []
        window_erased = []
        packets = []

        for half_start in half_frame_starts:
            if half_start < 0:
                continue
            last_needed = half_start + int(self._useful_starts[symbol_index(9, 6)]) + fft
            if last_needed > n:
                continue
            with span("bsrx.sync"):
                cascade = self._cascade_channel(
                    shifted_samples, ambient_reference, half_start
                )
            for slot_symbols in slot_plan():
                slot, sym0 = slot_symbols[0]
                y0, _ = self._useful(shifted_samples, half_start, slot, sym0)
                x0, _ = self._useful(ambient_reference, half_start, slot, sym0)

                with span("bsrx.phase_offset"):
                    est_a, channel_a, errors_a = self._model_post_eq(y0, x0)
                    est_b, errors_b = self._model_predistort(y0, x0, cascade)

                preamble_errors = min(errors_a, errors_b)
                if (
                    self.erasure_threshold is not None
                    and preamble_errors > self.erasure_threshold * self.n_chips
                ):
                    # Preamble correlation collapsed: sync is lost for this
                    # packet.  Emit its data windows as erasures (nominal
                    # offset, placeholder bits) so the accounting layer can
                    # exclude them, then continue at the next packet — the
                    # half-frame grid is PSS-derived, so the next boundary
                    # is the re-acquisition point.
                    record = PacketRecord(
                        half_frame_start=int(half_start),
                        slot=slot,
                        offset=self.nominal_offset,
                        gain=0j,
                        metric=0.0,
                        model="erased",
                        preamble_errors=preamble_errors,
                    )
                    for slot_, sym in slot_symbols[1:]:
                        abs_start = half_start + int(
                            self._useful_starts[symbol_index(slot_, sym)]
                        )
                        window_start = abs_start + self.nominal_offset
                        bits = np.zeros(self.n_chips, dtype=np.int8)
                        all_bits.append(bits)
                        all_soft.append(np.zeros(self.n_chips))
                        window_bits.append(bits)
                        window_erased.append(True)
                        starts.append(window_start)
                        record.data_starts.append(window_start)
                    packets.append(record)
                    continue

                use_post_eq = errors_a <= errors_b
                estimate = est_a if use_post_eq else est_b
                record = PacketRecord(
                    half_frame_start=int(half_start),
                    slot=slot,
                    offset=estimate.offset,
                    gain=estimate.gain,
                    metric=estimate.metric,
                    model="post-eq" if use_post_eq else "predistort",
                    preamble_errors=min(errors_a, errors_b),
                )
                derotate_b = np.conj(est_b.gain)
                for slot_, sym in slot_symbols[1:]:
                    y, abs_start = self._useful(
                        shifted_samples, half_start, slot_, sym
                    )
                    x, _ = self._useful(ambient_reference, half_start, slot_, sym)
                    lo = estimate.offset
                    hi = lo + self.n_chips
                    with span("bsrx.equalise"):
                        if use_post_eq:
                            y_eq = equalize_symbol(y, channel_a)
                            soft = np.real(y_eq[lo:hi] * np.conj(x[lo:hi]))
                        else:
                            w = self._predistorted(x, cascade)
                            soft = np.real(
                                derotate_b * y[lo:hi] * np.conj(w[lo:hi])
                            )
                    with span("bsrx.demod"):
                        bits = (soft > 0).astype(np.int8)
                    all_bits.append(bits)
                    all_soft.append(soft)
                    window_bits.append(bits)
                    window_erased.append(False)
                    starts.append(abs_start + lo)
                    record.data_starts.append(abs_start + lo)
                packets.append(record)

        if all_bits:
            bits = np.concatenate(all_bits)
            soft = np.concatenate(all_soft)
        else:
            bits = np.zeros(0, dtype=np.int8)
            soft = np.zeros(0)
        obs_metrics.counter_inc("bsrx.packets", len(packets))
        obs_metrics.counter_inc("bsrx.windows", len(window_bits))
        n_erased = int(sum(bool(flag) for flag in window_erased))
        if n_erased:
            obs_metrics.counter_inc("bsrx.erasures", n_erased)
        return BsDemodResult(
            bits=bits,
            soft=soft,
            starts=np.asarray(starts, dtype=np.int64),
            window_bits=window_bits,
            window_erased=window_erased,
            packets=packets,
        )
