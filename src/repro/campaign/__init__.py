"""Sharded, resumable experiment campaigns.

The paper's headline results are parameter sweeps — distance matrices,
bandwidth scaling, 24 h diurnal deployments.  This package turns any
campaign-capable registry experiment into a deterministic shard grid that
executes through the fleet's :class:`~repro.fleet.engine.ParallelRunEngine`,
checkpoints every completed shard (JSON + CRC-32) into a run directory,
skips verified checkpoints on ``--resume``, and aggregates the full grid
back into the exact :class:`ExperimentResult` the monolithic experiment
produces.

Entry point: ``repro campaign <experiment> [--shards N --shard-index I
--resume]``; the sharding interface is what CI uses to split a sweep
across matrix jobs.  See DESIGN.md §13.
"""

from repro.campaign.checkpoint import CheckpointStore, canonical_crc
from repro.campaign.registry import CampaignDef, campaign_capable, get_campaign
from repro.campaign.runner import (
    CampaignReport,
    CampaignRunner,
    ShardOutcome,
    ShardTask,
)
from repro.campaign.spec import (
    CampaignSpec,
    Shard,
    build_shards,
    select_shards,
)

__all__ = [
    "CampaignDef",
    "CampaignReport",
    "CampaignRunner",
    "CampaignSpec",
    "CheckpointStore",
    "Shard",
    "ShardOutcome",
    "ShardTask",
    "build_shards",
    "campaign_capable",
    "canonical_crc",
    "get_campaign",
    "select_shards",
]
