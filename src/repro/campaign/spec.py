"""Campaign specifications and the deterministic shard grid.

A :class:`CampaignSpec` names a registry experiment plus the knobs that
shape its parameter grid (seed, smoke mode).  :func:`build_shards`
expands the spec into the full ordered list of :class:`Shard`\\ s — one
per grid point, each carrying its JSON-safe parameter dict and its own
seed — and :func:`select_shards` picks the round-robin subset a single
job (a CI matrix entry, a crashed-and-resumed rerun) is responsible for.

Determinism contract: the same spec always produces the same shards in
the same order with the same seeds, independent of how they are later
partitioned or executed.  Everything downstream (checkpoint identity,
resume, sharded-vs-monolithic equality) leans on this.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.campaign.registry import get_campaign


@dataclass(frozen=True)
class CampaignSpec:
    """What to sweep: a campaign-capable experiment and its grid knobs."""

    experiment: str
    seed: int = 0
    #: Smoke grids are the experiments' reduced CI axes.
    smoke: bool = False


@dataclass
class Shard:
    """One seeded grid point of a campaign."""

    #: Position in the full grid (stable across any partitioning).
    index: int
    #: Filesystem-safe stable identity, e.g. ``fig19-0003``.
    shard_id: str
    experiment: str
    #: JSON-safe parameters for ``run_point``.
    params: dict = field(default_factory=dict)
    seed: int = 0


def build_shards(spec):
    """Expand a spec into the full, ordered, seeded shard list."""
    definition = get_campaign(spec.experiment)
    points = definition.points(seed=spec.seed, smoke=spec.smoke)
    prefix = f"{spec.experiment}{'-smoke' if spec.smoke else ''}"
    shards = []
    for index, params in enumerate(points):
        params = dict(params)
        # A grid may pin per-point seeds; the spec seed is the default.
        seed = int(params.pop("seed", spec.seed))
        shards.append(
            Shard(
                index=index,
                shard_id=f"{prefix}-{index:04d}",
                experiment=spec.experiment,
                params=params,
                seed=seed,
            )
        )
    return shards


def select_shards(shards, n_shards, shard_index):
    """The round-robin subset of the grid owned by one of ``n_shards`` jobs.

    Round-robin (``index % n_shards``) keeps every job's cost roughly
    equal even when the grid is ordered cheap-to-expensive (distance and
    bandwidth sweeps usually are).
    """
    n_shards = int(n_shards)
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    shard_index = int(shard_index)
    if not 0 <= shard_index < n_shards:
        raise ValueError(
            f"shard_index must be in [0, {n_shards}), got {shard_index}"
        )
    return [shard for shard in shards if shard.index % n_shards == shard_index]
