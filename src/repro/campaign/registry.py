"""Resolve registry experiments to their campaign protocol.

A campaign-capable experiment module exposes three callables (shared, or
suffixed per figure id for modules that cover several figures):

* ``campaign_points(seed=, smoke=)`` (or ``campaign_points_<id>``) —
  the deterministic parameter grid, a list of JSON-safe dicts;
* ``run_point(params, seed)`` (or ``run_point_<id>``) — one pure grid
  point returning one figure row;
* ``aggregate(rows, seed=)`` (or ``aggregate_<id>``) — merge the rows,
  in grid order, into the exact :class:`ExperimentResult` the monolithic
  ``run()`` produces.

The module's own ``run()`` is required to be implemented *as* "points →
run_point → aggregate", which is what makes sharded and monolithic
executions bit-identical by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.registry import REGISTRY, resolve_module


@dataclass(frozen=True)
class CampaignDef:
    """The resolved campaign protocol for one experiment id."""

    experiment: str
    description: str
    points: object
    run_point: object
    aggregate: object


def _resolve(module, base, experiment_id):
    specific = getattr(module, f"{base}_{experiment_id}", None)
    return specific if specific is not None else getattr(module, base, None)


def get_campaign(experiment_id):
    """The :class:`CampaignDef` for an experiment id.

    Raises ``KeyError`` for unknown experiments and for registry
    experiments that do not implement the campaign protocol.
    """
    experiment_id = experiment_id.lower()
    module = resolve_module(experiment_id)  # KeyError on unknown ids
    points = _resolve(module, "campaign_points", experiment_id)
    run_point = _resolve(module, "run_point", experiment_id)
    aggregate = _resolve(module, "aggregate", experiment_id)
    if points is None or run_point is None or aggregate is None:
        raise KeyError(
            f"experiment {experiment_id!r} has no campaign support; "
            f"campaign-capable experiments: {', '.join(campaign_capable())}"
        )
    return CampaignDef(
        experiment=experiment_id,
        description=REGISTRY[experiment_id][1],
        points=points,
        run_point=run_point,
        aggregate=aggregate,
    )


def campaign_capable():
    """Sorted ids of every registry experiment with campaign support."""
    capable = []
    for experiment_id in sorted(REGISTRY):
        module = resolve_module(experiment_id)
        if all(
            _resolve(module, base, experiment_id) is not None
            for base in ("campaign_points", "run_point", "aggregate")
        ):
            capable.append(experiment_id)
    return capable
