"""Execute campaign shards through the parallel engine, with resume.

The runner glues the campaign substrates together:

1. :func:`~repro.campaign.spec.build_shards` expands the spec into the
   deterministic seeded grid; a job optionally owns only the round-robin
   ``--shard-index`` slice of it;
2. completed shards already on disk (``--resume``) are verified against
   their CRC + identity and skipped; corrupt or stale checkpoints are
   re-run;
3. the rest fan out through
   :class:`~repro.fleet.engine.ParallelRunEngine` — same retry, timeout
   and partial-failure machinery as the fleet — and every harvested
   result is checkpointed *immediately* via the engine's ``on_result``
   hook, so a campaign killed mid-flight keeps everything it finished;
4. a per-job manifest records shard statuses, and when every shard of
   the *full* grid has a verified checkpoint the rows are aggregated, in
   grid order, into the exact result the monolithic experiment produces.

IQ-level points executed inside long-lived workers share eNodeB captures
through :func:`repro.fleet.ambient.process_cache`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.campaign.checkpoint import CheckpointStore
from repro.campaign.registry import get_campaign
from repro.campaign.spec import build_shards, select_shards
from repro.fleet.engine import ParallelRunEngine, TaskFailure
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span


@dataclass
class ShardTask:
    """Self-contained, picklable payload for one shard execution."""

    experiment: str
    shard_id: str
    index: int
    params: dict
    seed: int


@dataclass
class ShardOutcome:
    """What happened to one shard in this job."""

    shard_id: str
    index: int
    #: ``completed`` (executed + checkpointed), ``resumed`` (verified
    #: checkpoint reused), or ``failed`` (exhausted every retry).
    status: str
    row: dict = None
    error: str = None
    elapsed_seconds: float = 0.0


@dataclass
class CampaignReport:
    """One campaign job's outcomes plus the aggregate when complete."""

    experiment: str
    seed: int
    smoke: bool
    run_dir: str
    n_shards: int
    shard_index: int  # None when the job owns the whole grid
    #: Shards in the full grid / owned by this job.
    total_shards: int = 0
    outcomes: list = field(default_factory=list)
    #: Full-grid shards with a verified checkpoint after this job ran.
    checkpointed: int = 0
    #: Aggregated ExperimentResult; ``None`` until the grid is complete.
    result: object = None
    manifest_path: str = None
    telemetry: object = None

    def count(self, status):
        return sum(1 for o in self.outcomes if o.status == status)

    @property
    def completed(self):
        return self.count("completed")

    @property
    def resumed(self):
        return self.count("resumed")

    @property
    def failed(self):
        return self.count("failed")


def _execute_shard(task):
    """Run one shard's pure point function; ``(elapsed, result)``.

    Module-level and argument-pure so it pickles into workers and
    reproduces exactly when retried in the parent.
    """
    start = time.perf_counter()
    definition = get_campaign(task.experiment)
    with span(
        "campaign.shard", experiment=task.experiment, shard=task.shard_id
    ):
        row = definition.run_point(dict(task.params), task.seed)
    elapsed = time.perf_counter() - start
    return elapsed, {"row": row, "elapsed_seconds": elapsed}


class CampaignRunner:
    """Run (part of) a campaign into a checkpointed run directory."""

    def __init__(
        self,
        spec,
        run_dir,
        workers=1,
        n_shards=1,
        shard_index=None,
        resume=False,
        max_retries=1,
        task_timeout_seconds=None,
        on_error="raise",
    ):
        self.spec = spec
        self.run_dir = str(run_dir)
        self.workers = workers
        self.n_shards = max(1, int(n_shards))
        self.shard_index = shard_index
        self.resume = bool(resume)
        self.max_retries = max_retries
        self.task_timeout_seconds = task_timeout_seconds
        self.on_error = on_error

    def _owned(self, shards):
        if self.shard_index is not None:
            return select_shards(shards, self.n_shards, self.shard_index)
        if self.n_shards == 1:
            return list(shards)
        # No index: run every slice, in slice order, through the same
        # partitioning — `--shards N` without an index exercises exactly
        # what N separate jobs would do, one slice after another.
        owned = []
        for index in range(self.n_shards):
            owned.extend(select_shards(shards, self.n_shards, index))
        return owned

    def run(self):
        """Execute this job's shards; returns a :class:`CampaignReport`.

        With ``on_error='raise'`` (the default) a shard that fails every
        retry propagates — already-checkpointed shards stay on disk and a
        ``--resume`` rerun picks up from them.
        """
        spec = self.spec
        definition = get_campaign(spec.experiment)
        shards = build_shards(spec)
        owned = self._owned(shards)
        store = CheckpointStore(self.run_dir)

        outcomes = {}
        to_run = []
        for shard in owned:
            if self.resume:
                status, row = store.verify(shard)
                if status == "ok":
                    obs_metrics.counter_inc("campaign.shards_skipped")
                    outcomes[shard.index] = ShardOutcome(
                        shard_id=shard.shard_id,
                        index=shard.index,
                        status="resumed",
                        row=row,
                    )
                    continue
                if status in ("corrupt", "stale"):
                    obs_metrics.counter_inc("campaign.checkpoints_corrupt")
            to_run.append(shard)

        engine = ParallelRunEngine(
            workers=self.workers,
            max_retries=self.max_retries,
            task_timeout_seconds=self.task_timeout_seconds,
            on_error=self.on_error,
        )

        def _harvest(position, result):
            shard = to_run[position]
            if isinstance(result, TaskFailure):
                obs_metrics.counter_inc("campaign.shards_failed")
                outcomes[shard.index] = ShardOutcome(
                    shard_id=shard.shard_id,
                    index=shard.index,
                    status="failed",
                    error=result.error,
                )
                return
            store.write(
                shard, result["row"], elapsed_seconds=result["elapsed_seconds"]
            )
            obs_metrics.counter_inc("campaign.shards_completed")
            outcomes[shard.index] = ShardOutcome(
                shard_id=shard.shard_id,
                index=shard.index,
                status="completed",
                row=result["row"],
                elapsed_seconds=result["elapsed_seconds"],
            )

        if to_run:
            tasks = [
                ShardTask(
                    experiment=shard.experiment,
                    shard_id=shard.shard_id,
                    index=shard.index,
                    params=dict(shard.params),
                    seed=shard.seed,
                )
                for shard in to_run
            ]
            engine.map(_execute_shard, tasks, on_result=_harvest)

        report = CampaignReport(
            experiment=spec.experiment,
            seed=spec.seed,
            smoke=spec.smoke,
            run_dir=self.run_dir,
            n_shards=self.n_shards,
            shard_index=self.shard_index,
            total_shards=len(shards),
            outcomes=[outcomes[s.index] for s in owned if s.index in outcomes],
            telemetry=engine.telemetry,
        )

        entries = [
            {
                "shard_id": o.shard_id,
                "index": o.index,
                "params": next(
                    s.params for s in owned if s.index == o.index
                ),
                "seed": next(s.seed for s in owned if s.index == o.index),
                "status": o.status,
                "elapsed_seconds": o.elapsed_seconds,
                "error": o.error,
            }
            for o in report.outcomes
        ]
        report.manifest_path = store.write_manifest(
            spec, self.n_shards, self.shard_index, entries
        )

        # Aggregate when the *full* grid is verifiably checkpointed —
        # regardless of which jobs (this one, earlier ones, other matrix
        # entries writing to the same run dir) produced the shards.
        rows = []
        checkpointed = 0
        for shard in shards:
            status, row = store.verify(shard)
            if status == "ok":
                checkpointed += 1
                rows.append(row)
        report.checkpointed = checkpointed
        if checkpointed == len(shards):
            report.result = definition.aggregate(rows, seed=spec.seed)
        return report
