"""On-disk shard checkpoints: JSON payload + CRC-32, atomic writes.

A campaign's run directory holds one small JSON file per completed shard
plus per-job manifests.  Each checkpoint embeds a CRC-32
(:func:`repro.utils.integrity.crc32_bytes`) of its canonicalised payload;
:meth:`CheckpointStore.verify` re-reads and re-checks the file, so
``--resume`` only trusts checkpoints that are present, parseable,
CRC-intact, *and* belong to the same shard identity (experiment, params,
seed) — a grid edit or reseed quietly invalidates stale results instead
of merging them.

Writes go through a temp file + ``os.replace`` so a crash mid-write can
only ever leave a missing or verifiably-corrupt checkpoint, never a
silently-truncated "valid" one.  Values are sanitised to plain Python
scalars before hitting JSON; floats round-trip bit-exactly (shortest
repr), which is what keeps sharded aggregation identical to the
monolithic run.
"""

from __future__ import annotations

import json
import os
import tempfile

import numpy as np

from repro.utils.integrity import crc32_bytes

#: Bumped when the checkpoint layout changes; mismatches read as stale.
CHECKPOINT_VERSION = 1


def _jsonify(value):
    """Plain-Python view of a row/params value (bit-exact for floats)."""
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if isinstance(value, np.generic):
        return _jsonify(value.item())
    if isinstance(value, float):
        return float(value)
    if isinstance(value, (bool, int, str)) or value is None:
        return value
    return repr(value)


def _canonical(payload):
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def canonical_crc(payload):
    """CRC-32 of a payload's canonical JSON form (sorted keys, no spaces).

    The digest every checkpoint embeds, exposed for other layers that
    need a stable content identity for JSON-safe rows — the soak harness
    fingerprints each cohort's results (and the whole grid) with it, so
    "bit-identical aggregates" reduces to integer equality.
    """
    return crc32_bytes(_canonical(_jsonify(payload)).encode())


class CheckpointStore:
    """Shard checkpoints and manifests under one run directory."""

    def __init__(self, run_dir):
        self.run_dir = str(run_dir)
        os.makedirs(self.run_dir, exist_ok=True)

    def path(self, shard):
        return os.path.join(self.run_dir, f"{shard.shard_id}.json")

    # -- checkpoints -------------------------------------------------------------

    def write(self, shard, row, elapsed_seconds=0.0):
        """Atomically persist one completed shard; returns the path."""
        payload = {
            "version": CHECKPOINT_VERSION,
            "experiment": shard.experiment,
            "shard_id": shard.shard_id,
            "index": int(shard.index),
            "params": _jsonify(shard.params),
            "seed": int(shard.seed),
            "row": _jsonify(row),
            "elapsed_seconds": float(elapsed_seconds),
        }
        record = {"crc32": crc32_bytes(_canonical(payload).encode()),
                  "payload": payload}
        path = self.path(shard)
        fd, tmp = tempfile.mkstemp(
            prefix=f".{shard.shard_id}-", suffix=".tmp", dir=self.run_dir
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(record, fh, indent=2, sort_keys=True)
            os.replace(tmp, path)
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)
        return path

    def verify(self, shard):
        """``(status, row)`` for a shard's checkpoint.

        Status is ``"ok"`` (row usable), ``"missing"``, ``"corrupt"``
        (unparseable or CRC mismatch), or ``"stale"`` (intact but written
        for a different grid identity — params, seed, experiment, or
        checkpoint version changed).
        """
        path = self.path(shard)
        if not os.path.exists(path):
            return "missing", None
        try:
            with open(path) as fh:
                record = json.load(fh)
            payload = record["payload"]
            crc = int(record["crc32"])
        except (json.JSONDecodeError, KeyError, TypeError, ValueError,
                OSError):
            return "corrupt", None
        if crc32_bytes(_canonical(payload).encode()) != crc:
            return "corrupt", None
        identity_ok = (
            payload.get("version") == CHECKPOINT_VERSION
            and payload.get("experiment") == shard.experiment
            and payload.get("shard_id") == shard.shard_id
            and payload.get("index") == shard.index
            and payload.get("seed") == int(shard.seed)
            and payload.get("params") == _jsonify(shard.params)
        )
        if not identity_ok:
            return "stale", None
        return "ok", payload["row"]

    # -- manifests ---------------------------------------------------------------

    def manifest_path(self, n_shards=1, shard_index=None):
        if shard_index is None:
            return os.path.join(self.run_dir, "manifest.json")
        return os.path.join(
            self.run_dir, f"manifest-shard{int(shard_index)}of{int(n_shards)}.json"
        )

    def write_manifest(self, spec, n_shards, shard_index, entries):
        """Persist one job's view of the campaign; returns the path.

        ``entries`` is a list of dicts (shard_id/index/params/seed/status/
        elapsed_seconds/error).  Jobs of a sharded campaign write distinct
        ``manifest-shardIofN.json`` files, so CI matrix entries never
        clobber each other's artifacts.
        """
        manifest = {
            "experiment": spec.experiment,
            "seed": int(spec.seed),
            "smoke": bool(spec.smoke),
            "n_shards": int(n_shards),
            "shard_index": None if shard_index is None else int(shard_index),
            "shards": _jsonify(entries),
        }
        path = self.manifest_path(n_shards, shard_index)
        fd, tmp = tempfile.mkstemp(
            prefix=".manifest-", suffix=".tmp", dir=self.run_dir
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(manifest, fh, indent=2, sort_keys=True)
            os.replace(tmp, path)
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)
        return path
