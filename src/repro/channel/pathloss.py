"""Log-distance path loss with per-venue presets.

``PL(d) = FSPL(d0) + 10 n log10(d / d0)`` with ``d0 = 1 m``.  The venue
presets encode the three experimental environments of the paper (smart
home, shopping mall, outdoor street) as path-loss exponents and shadowing
spreads typical for those settings; the outdoor experiments additionally
benefit from the 600/680 MHz carrier having less loss per metre than
2.4 GHz WiFi, which is what produces the paper's Fig. 23 crossover.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.units import feet_to_meters

#: Speed of light (m/s).
SPEED_OF_LIGHT = 299_792_458.0


def free_space_path_loss_db(distance_m, frequency_hz):
    """Friis free-space path loss in dB (element-wise)."""
    distance_m = np.maximum(np.asarray(distance_m, dtype=float), 0.1)
    wavelength = SPEED_OF_LIGHT / float(frequency_hz)
    return (20.0 * np.log10(4.0 * np.pi * distance_m / wavelength))[()]


@dataclass(frozen=True)
class PathLossModel:
    """Log-distance path loss for one venue.

    ``exponent`` is the decay exponent n; ``shadowing_db`` the log-normal
    sigma used when a generator is supplied; ``extra_loss_db`` covers
    fixed penetration losses (walls for NLoS).
    """

    exponent: float
    shadowing_db: float = 0.0
    extra_loss_db: float = 0.0
    #: Linear absorption (dB per metre) for cluttered environments — used
    #: by the street-level 40 dBm experiment where the paper's observed
    #: ranges imply losses far above log-distance alone.
    absorption_db_per_m: float = 0.0

    def loss_db(self, distance_m, frequency_hz, rng=None):
        """Total path loss in dB at ``distance_m`` and ``frequency_hz``."""
        distance_m = np.maximum(np.asarray(distance_m, dtype=float), 0.1)
        reference = free_space_path_loss_db(1.0, frequency_hz)
        loss = (
            reference
            + 10.0 * self.exponent * np.log10(distance_m)
            + self.extra_loss_db
            + self.absorption_db_per_m * distance_m
        )
        if rng is not None and self.shadowing_db > 0:
            loss = loss + rng.normal(0.0, self.shadowing_db, size=np.shape(loss))
        return loss[()] if np.ndim(loss) else float(loss)

    def loss_db_feet(self, distance_ft, frequency_hz, rng=None):
        """Convenience wrapper taking the paper's feet."""
        return self.loss_db(feet_to_meters(distance_ft), frequency_hz, rng)


#: The three experimental venues (paper §4.2) plus LoS/NLoS variants.
VENUE_PRESETS = {
    "smart_home": PathLossModel(exponent=3.0, shadowing_db=3.0),
    "smart_home_nlos": PathLossModel(exponent=3.0, shadowing_db=3.0, extra_loss_db=5.0),
    "shopping_mall": PathLossModel(exponent=2.6, shadowing_db=2.5),
    "outdoor": PathLossModel(exponent=2.1, shadowing_db=2.0),
    "outdoor_street": PathLossModel(
        exponent=2.1, shadowing_db=2.0, absorption_db_per_m=0.3
    ),
    "free_space": PathLossModel(exponent=2.0, shadowing_db=0.0),
}
