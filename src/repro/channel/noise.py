"""Thermal noise at IQ level.

Waveforms in the reproduction carry amplitudes in sqrt-milliwatt units, so
a sample stream with mean |x|^2 = p represents p mW of signal power.  The
matching noise floor for a receiver sampled at the signal bandwidth is
``kTB * NF`` over that bandwidth.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import make_rng
from repro.utils.units import dbm_to_watts, thermal_noise_dbm


def noise_std_for_bandwidth(bandwidth_hz, noise_figure_db=6.0):
    """Per-quadrature noise standard deviation in sqrt-mW units."""
    noise_dbm = thermal_noise_dbm(bandwidth_hz, noise_figure_db)
    noise_mw = dbm_to_watts(noise_dbm) * 1e3
    return float(np.sqrt(noise_mw / 2.0))


def add_thermal_noise(samples, bandwidth_hz, noise_figure_db=6.0, rng=None):
    """Add kTB+NF complex noise to a sqrt-mW waveform."""
    rng = make_rng(rng)
    samples = np.asarray(samples, dtype=complex)
    std = noise_std_for_bandwidth(bandwidth_hz, noise_figure_db)
    noise = std * (
        rng.standard_normal(len(samples)) + 1j * rng.standard_normal(len(samples))
    )
    return samples + noise
