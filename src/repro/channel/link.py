"""Link budgets for the direct (eNodeB->UE) and backscatter
(eNodeB->tag->UE) paths.

Amplitude convention: IQ waveforms carry sqrt-milliwatt amplitudes, so the
budget turns dBm powers into waveform scale factors, and the same numbers
drive both the sample-level simulation and the closed-form BER model in
:mod:`repro.core.link_budget`.

Calibration.  The paper's measured ranges (13 Mbps links at 10 dBm over
tens of feet, BER < 1 % at 150 ft indoors) imply a healthy amount of
aggregate antenna/front-end gain in their testbed that the paper does not
itemise.  We fold it into ``system_gain_db`` (default 24 dB across the
cascade: directional eNodeB/UE antennas plus the tag's antenna on both
passes), chosen once so the mall BER-vs-distance anchor lands, and then
*held fixed* for every other experiment — the shapes elsewhere are
predictions, not fits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.channel.fading import FadingChannel
from repro.channel.pathloss import PathLossModel, VENUE_PRESETS
from repro.utils.rng import make_rng
from repro.utils.units import db_to_linear, dbm_to_watts, feet_to_meters

#: Carrier frequency used in the paper's experiments (680 MHz white space).
DEFAULT_CARRIER_HZ = 680e6

#: Aggregate testbed gain across the backscatter cascade (see module doc).
DEFAULT_SYSTEM_GAIN_DB = 24.0

#: Tag conversion loss: square-wave fundamental (4/pi^2 ~ -3.9 dB) plus
#: reflection/matching inefficiency.
DEFAULT_TAG_LOSS_DB = 8.0

#: Receiver noise figure.
DEFAULT_NOISE_FIGURE_DB = 6.0


def _amplitude_from_dbm(power_dbm):
    """Scale factor turning a unit-power waveform into ``power_dbm``."""
    return float(np.sqrt(dbm_to_watts(power_dbm) * 1e3))


@dataclass
class LinkBudget:
    """Static configuration of one experiment's RF situation."""

    tx_power_dbm: float = 10.0
    carrier_hz: float = DEFAULT_CARRIER_HZ
    venue: str = "shopping_mall"
    system_gain_db: float = DEFAULT_SYSTEM_GAIN_DB
    tag_loss_db: float = DEFAULT_TAG_LOSS_DB
    noise_figure_db: float = DEFAULT_NOISE_FIGURE_DB

    def __post_init__(self):
        if self.venue not in VENUE_PRESETS:
            raise ValueError(
                f"unknown venue {self.venue!r}; choose from {sorted(VENUE_PRESETS)}"
            )

    @property
    def pathloss(self):
        return VENUE_PRESETS[self.venue]

    # -- powers --------------------------------------------------------------

    def direct_rx_dbm(self, distance_ft, rng=None):
        """Received ambient LTE power at the UE (direct path)."""
        loss = self.pathloss.loss_db_feet(distance_ft, self.carrier_hz, rng)
        # Half the system gain applies (one eNodeB->UE pass, no tag).
        return self.tx_power_dbm - loss + self.system_gain_db / 2.0

    def backscatter_rx_dbm(self, enb_to_tag_ft, tag_to_ue_ft, rng=None):
        """Received backscatter power at the UE (cascade path)."""
        loss1 = self.pathloss.loss_db_feet(enb_to_tag_ft, self.carrier_hz, rng)
        loss2 = self.pathloss.loss_db_feet(tag_to_ue_ft, self.carrier_hz, rng)
        return (
            self.tx_power_dbm
            - loss1
            - self.tag_loss_db
            - loss2
            + self.system_gain_db
        )

    def noise_dbm(self, bandwidth_hz):
        """Noise floor over ``bandwidth_hz`` including the noise figure."""
        from repro.utils.units import thermal_noise_dbm

        return thermal_noise_dbm(bandwidth_hz, self.noise_figure_db)

    def backscatter_snr_db(self, enb_to_tag_ft, tag_to_ue_ft, bandwidth_hz, rng=None):
        """Mean chip SNR of the backscatter path over ``bandwidth_hz``."""
        return self.backscatter_rx_dbm(enb_to_tag_ft, tag_to_ue_ft, rng) - self.noise_dbm(
            bandwidth_hz
        )

    def direct_snr_db(self, distance_ft, bandwidth_hz, rng=None):
        """SNR of the ambient LTE signal at the UE."""
        return self.direct_rx_dbm(distance_ft, rng) - self.noise_dbm(bandwidth_hz)


@dataclass
class DirectLink:
    """eNodeB -> UE path applied to IQ samples."""

    budget: LinkBudget
    distance_ft: float
    fading: FadingChannel = field(default_factory=FadingChannel.flat)

    def apply(self, samples, rng=None):
        """Scale + filter a unit-power waveform to its received version."""
        rx_dbm = self.budget.direct_rx_dbm(self.distance_ft, rng)
        return self.fading.apply(np.asarray(samples, dtype=complex)) * _amplitude_from_dbm(rx_dbm)


@dataclass
class BackscatterLink:
    """eNodeB -> tag -> UE cascade applied to IQ samples.

    ``apply_to_tag`` gives the waveform the tag's envelope circuit sees;
    ``apply_from_tag`` takes the tag's reflected waveform to the UE.
    """

    budget: LinkBudget
    enb_to_tag_ft: float
    tag_to_ue_ft: float
    fading_in: FadingChannel = field(default_factory=FadingChannel.flat)
    fading_out: FadingChannel = field(default_factory=FadingChannel.flat)

    def tag_rx_dbm(self, rng=None):
        """Power arriving at the tag antenna."""
        loss = self.budget.pathloss.loss_db_feet(
            self.enb_to_tag_ft, self.budget.carrier_hz, rng
        )
        return self.budget.tx_power_dbm - loss + self.budget.system_gain_db / 2.0

    def apply_to_tag(self, samples, rng=None):
        """eNodeB waveform as seen at the tag."""
        scale = _amplitude_from_dbm(self.tag_rx_dbm(rng))
        return self.fading_in.apply(np.asarray(samples, dtype=complex)) * scale

    def apply_from_tag(self, reflected, rng=None):
        """Tag-reflected waveform as seen at the UE.

        ``reflected`` must still be normalised to the *tag input* level;
        this applies the tag conversion loss and the outgoing hop.
        """
        loss2 = self.budget.pathloss.loss_db_feet(
            self.tag_to_ue_ft, self.budget.carrier_hz, rng
        )
        gain_db = (
            -self.budget.tag_loss_db - loss2 + self.budget.system_gain_db / 2.0
        )
        scale = float(np.sqrt(db_to_linear(gain_db)))
        return self.fading_out.apply(np.asarray(reflected, dtype=complex)) * scale
