"""Wireless channel substrate: path loss, fading, noise, backscatter links.

The paper's link topology is a cascade — eNodeB -> tag -> UE for the
backscattered signal, eNodeB -> UE for the ambient signal — and every
distance/BER experiment reduces to this package's link budget plus the
IQ-level impairments it applies.
"""

from repro.channel.pathloss import PathLossModel, VENUE_PRESETS
from repro.channel.fading import FadingChannel, tdl_taps
from repro.channel.noise import noise_std_for_bandwidth, add_thermal_noise
from repro.channel.link import BackscatterLink, DirectLink, LinkBudget

__all__ = [
    "PathLossModel",
    "VENUE_PRESETS",
    "FadingChannel",
    "tdl_taps",
    "noise_std_for_bandwidth",
    "add_thermal_noise",
    "BackscatterLink",
    "DirectLink",
    "LinkBudget",
]
