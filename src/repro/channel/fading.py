"""Small-scale fading: tapped-delay-line Rayleigh/Rician channels.

Indoor venues are "multipath rich" (paper §4.3) — an exponential power
delay profile with several taps; outdoor links are closer to LoS with a
Rician first tap.  Channels are static over a capture (the paper's tags
and radios do not move during a measurement), which also matches the
assumption behind its phase-offset elimination (constant φ over a frame).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.signal import fftconvolve

from repro.utils.rng import make_rng


def venue_k_factor_db(venue, distance_ft, nlos=False):
    """Rician K factor (dB) for a hop of ``distance_ft`` in a venue.

    Short hops are dominated by the direct path: at sample-level chip
    rates, excess-delay taps need metres of extra path, which carry very
    little energy when the endpoints are feet apart.  K shrinks with
    distance faster indoors than outdoors; NLoS knocks a further 12 dB off.
    """
    distance_ft = float(distance_ft)
    if venue.startswith("outdoor"):
        k_db = 30.0 - 0.12 * distance_ft
        k_db = float(np.clip(k_db, 10.0, 30.0))
    else:
        k_db = 32.0 - 1.3 * distance_ft
        k_db = float(np.clip(k_db, 3.0, 30.0))
    if nlos:
        k_db -= 12.0
    return k_db


def scatter_fraction(k_db):
    """Fraction of hop power in scattered (non-LoS) taps for a K factor."""
    return 1.0 / (1.0 + 10.0 ** (float(k_db) / 10.0))


def tdl_taps(n_taps, decay_db_per_tap, rician_k_db=None, rng=None):
    """Draw complex tap gains for an exponential power-delay profile.

    Total *mean* power is normalised to 1 so fading does not change the
    mean link budget.  ``rician_k_db`` sets the ratio of deterministic LoS
    power (tap 0) to the total scattered power across all taps:
    ``K = P_los / P_scatter``.
    """
    rng = make_rng(rng)
    n_taps = int(n_taps)
    if n_taps < 1:
        raise ValueError("need at least one tap")
    profile = 10.0 ** (-decay_db_per_tap * np.arange(n_taps) / 10.0)
    profile /= profile.sum()
    if rician_k_db is None:
        scatter_total = 1.0
        los = 0.0
    else:
        k = 10.0 ** (rician_k_db / 10.0)
        scatter_total = 1.0 / (k + 1.0)
        los = np.sqrt(k / (k + 1.0))
    scatter_powers = profile * scatter_total
    taps = np.sqrt(scatter_powers / 2.0) * (
        rng.standard_normal(n_taps) + 1j * rng.standard_normal(n_taps)
    )
    taps[0] += los
    return taps


@dataclass
class FadingChannel:
    """A static tapped-delay-line channel applied by FIR filtering."""

    taps: np.ndarray

    @classmethod
    def rayleigh(cls, n_taps=4, decay_db_per_tap=3.0, rng=None):
        """Multipath-rich NLoS channel (indoor)."""
        return cls(taps=tdl_taps(n_taps, decay_db_per_tap, rng=rng))

    @classmethod
    def rician(cls, k_db=10.0, n_taps=2, decay_db_per_tap=6.0, rng=None):
        """Mostly-LoS channel (outdoor / short range)."""
        return cls(taps=tdl_taps(n_taps, decay_db_per_tap, rician_k_db=k_db, rng=rng))

    @classmethod
    def flat(cls):
        """Ideal single-tap channel (unit gain, zero phase)."""
        return cls(taps=np.array([1.0 + 0.0j]))

    def apply(self, samples):
        """Filter ``samples`` through the channel (keeps input length)."""
        samples = np.asarray(samples, dtype=complex)
        if len(self.taps) == 1:
            return samples * self.taps[0]
        out = fftconvolve(samples, self.taps, mode="full")
        return out[: len(samples)]

    @property
    def flat_gain(self):
        """Aggregate narrowband gain (sum of taps) — used by budgets."""
        return complex(np.sum(self.taps))
