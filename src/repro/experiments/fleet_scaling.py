"""fleetN: network throughput vs. number of tags on one cell.

The natural multi-tag extension of the paper's per-venue throughput
figures (Fig. 16/21): hold the ambient cell fixed, grow the fleet, and
measure what the *network* delivers under each MAC scheme.  TDMA and the
EPC-style priority grant keep aggregate goodput flat (the cell's airtime
is simply divided), while slotted ALOHA pays the classic contention tax —
the shape 3GPP's Ambient-IoT work predicts for uncoordinated fleets.

Every (scheme, N) cell reuses one shared eNodeB capture through the
:class:`~repro.fleet.ambient.AmbientCache`, so the sweep costs one
transmit + modulation instead of ``sum(N)`` of them.
"""

from __future__ import annotations

from repro.experiments.registry import ExperimentResult
from repro.fleet import AmbientCache, Deployment, FleetRunner

DEFAULT_TAG_COUNTS = (1, 2, 4, 8)
DEFAULT_SCHEMES = ("tdma", "aloha", "priority")


def run(
    seed=0,
    tag_counts=DEFAULT_TAG_COUNTS,
    schemes=DEFAULT_SCHEMES,
    bandwidth_mhz=1.4,
    n_frames=4,
    workers=1,
):
    """Sweep fleet size per scheme; returns an :class:`ExperimentResult`."""
    cache = AmbientCache()
    rows = []
    try:
        for scheme in schemes:
            for n_tags in tag_counts:
                deployment = Deployment.ring(
                    n_tags, bandwidth_mhz=bandwidth_mhz, n_frames=n_frames
                )
                report = FleetRunner(
                    deployment,
                    scheme=scheme,
                    workers=workers,
                    seed=seed,
                    cache=cache,
                ).run(payload_length=50_000)
                rows.append(
                    {
                        "scheme": report.scheme,
                        "n_tags": n_tags,
                        "aggregate_mbps": report.aggregate_throughput_bps / 1e6,
                        "per_tag_kbps": (
                            report.aggregate_throughput_bps / n_tags / 1e3
                        ),
                        "mean_ber": report.mean_ber,
                        "collision_frac": report.collision_fraction,
                        "airtime_used": report.airtime_utilisation,
                    }
                )
    finally:
        cache.clear()
    return ExperimentResult(
        name="fleetN",
        description="Network throughput vs. number of tags (one shared cell)",
        rows=rows,
        notes=(
            f"{bandwidth_mhz} MHz cell, {n_frames} frames per run, shared "
            f"ambient ({cache.transmit_calls} eNodeB transmit call(s) total); "
            "granted schemes divide airtime, ALOHA pays the contention tax"
        ),
    )
