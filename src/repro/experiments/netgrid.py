"""netgrid: multi-cell goodput vs inter-site distance and interferer count.

The paper deploys against *one* ambient cell; this experiment asks what
city-scale reuse costs.  Two sweeps over a 7-cell hexagonal cluster:

* **isd** — tags sit at a fixed offset from their serving site while the
  cluster's inter-site distance shrinks.  Closer neighbours mean more
  co-channel power at the tag, so goodput falls and BER rises as the
  network densifies.
* **interferers** — one tag near the centre cell, with the topology
  restricted to the centre plus the first ``k`` ring cells.  Every added
  neighbour injects more co-channel power, so degradation must be
  *monotone* in ``k`` — and :func:`aggregate` gates on exactly that
  (goodput non-increasing, BER non-decreasing, within float slack).

Both sweeps run noise-free, multipath-free, with the sync error pinned to
zero and a genie reference: every impairment other than inter-cell
interference is switched off, so the curves isolate — and the gate can
legitimately demand — the interference effect.

Campaign-capable: each sweep point is one pure ``run_point`` task, so
``repro campaign netgrid --shards N`` reproduces the monolithic rows
bit-for-bit from any shard partition.
"""

from __future__ import annotations

from repro.cells import NetworkDeployment, NetworkRunner, NetworkTag, Topology
from repro.experiments.registry import ExperimentResult

#: Inter-site distances swept by the isd arm (feet).
ISD_GRID_FT = (100.0, 150.0, 250.0, 400.0)
#: Active ring-cell counts swept by the interferers arm.
INTERFERER_GRID = (0, 1, 2, 3, 4, 5, 6)
#: Fixed cluster pitch for the interferers arm (feet).
INTERFERER_ISD_FT = 150.0
#: Absolute slack for the monotone-degradation gate: next point may
#: exceed the running bound by at most this relative + absolute margin
#: before the gate trips (floats, not physics, get the benefit of doubt).
GATE_RELATIVE_SLACK = 1e-6


class MonotoneGateError(AssertionError):
    """The interference sweep violated monotone degradation."""


def _tags(serving_xy, offsets_ft):
    return [
        NetworkTag(
            name=f"tag{i:02d}",
            x_ft=serving_xy[0] + dx,
            y_ft=serving_xy[1] + dy,
        )
        for i, (dx, dy) in enumerate(offsets_ft)
    ]


def _deployment(tags):
    # Interference-only physics: see the module docstring.
    return NetworkDeployment(
        tags=tags,
        reference_mode="genie",
        add_noise=False,
        multipath=False,
        sync_error_samples=0,
    )


def campaign_points(seed=0, smoke=False):
    """One point per (sweep, value) pair — the campaign shard grid."""
    isd_grid = ISD_GRID_FT[::3] if smoke else ISD_GRID_FT
    k_grid = INTERFERER_GRID[:3] if smoke else INTERFERER_GRID
    points = [{"sweep": "isd", "inter_site_ft": float(d)} for d in isd_grid]
    points += [{"sweep": "interferers", "n_interferers": int(k)} for k in k_grid]
    return points


def _run_isd_point(params, seed):
    inter_site_ft = params["inter_site_ft"]
    topology = Topology.hex_cluster(
        inter_site_ft=inter_site_ft, rings=1, n_frames=2
    )
    centre = topology.site(0)
    tags = _tags(
        (centre.x_ft, centre.y_ft), [(18.0, 6.0), (-12.0, 15.0)]
    )
    with NetworkRunner(
        topology, _deployment(tags), seed=seed, payload_length=20000
    ) as runner:
        report = runner.run()
    return {
        "sweep": "isd",
        "inter_site_ft": inter_site_ft,
        "goodput_kbps": report.aggregate_goodput_bps / 1e3,
        "mean_ber": report.mean_ber,
        "n_cells": report.n_cells,
    }


def _run_interferers_point(params, seed):
    k = params["n_interferers"]
    topology = Topology.hex_cluster(
        inter_site_ft=INTERFERER_ISD_FT, rings=1, n_frames=2
    )
    # Centre cell plus the first k ring cells, in cell-id order.
    topology = topology.restrict([0] + [c for c in topology.cell_ids[1:]][:k])
    centre = topology.site(0)
    tags = _tags((centre.x_ft, centre.y_ft), [(18.0, 6.0)])
    with NetworkRunner(
        topology, _deployment(tags), seed=seed, payload_length=20000
    ) as runner:
        report = runner.run()
    return {
        "sweep": "interferers",
        "n_interferers": k,
        "goodput_kbps": report.aggregate_goodput_bps / 1e3,
        "mean_ber": report.mean_ber,
        "n_cells": report.n_cells,
    }


def run_point(params, seed):
    """One sweep point; pure per ``(params, seed)`` so shards reproduce."""
    if params["sweep"] == "isd":
        return _run_isd_point(params, seed)
    return _run_interferers_point(params, seed)


def _gate_monotone(rows):
    """Goodput must not rise, BER must not fall, as interferers grow."""
    ordered = sorted(rows, key=lambda row: row["n_interferers"])
    for prev, nxt in zip(ordered, ordered[1:]):
        slack = GATE_RELATIVE_SLACK * max(abs(prev["goodput_kbps"]), 1.0)
        if nxt["goodput_kbps"] > prev["goodput_kbps"] + slack:
            raise MonotoneGateError(
                f"interference gate: goodput rose from "
                f"{prev['goodput_kbps']:.6f} kbps at "
                f"{prev['n_interferers']} interferer(s) to "
                f"{nxt['goodput_kbps']:.6f} kbps at {nxt['n_interferers']}; "
                "adding a co-channel neighbour must not improve the link"
            )
        ber_slack = GATE_RELATIVE_SLACK * max(abs(prev["mean_ber"]), 1.0)
        if nxt["mean_ber"] < prev["mean_ber"] - ber_slack:
            raise MonotoneGateError(
                f"interference gate: mean BER fell from "
                f"{prev['mean_ber']:.3e} at {prev['n_interferers']} "
                f"interferer(s) to {nxt['mean_ber']:.3e} at "
                f"{nxt['n_interferers']}; adding a co-channel neighbour "
                "must not clean up the link"
            )
    return ordered


def aggregate(rows, seed=0):
    """Merge the sweep rows; gates the interference arm on monotonicity."""
    rows = list(rows)
    isd = sorted(
        (row for row in rows if row["sweep"] == "isd"),
        key=lambda row: row["inter_site_ft"],
    )
    interferers = _gate_monotone(
        [row for row in rows if row["sweep"] == "interferers"]
    )
    return ExperimentResult(
        name="netgrid",
        description=(
            "Multi-cell goodput/BER vs inter-site distance and vs number "
            "of interfering cells (7-cell hex cluster)"
        ),
        rows=isd + interferers,
        notes=(
            "Noise-free, multipath-free, genie reference: degradation is "
            "purely inter-cell interference.  The interferers arm is gated "
            "monotone (goodput non-increasing, BER non-decreasing in k)."
        ),
    )


def run(seed=0, smoke=False):
    """Both sweeps, monolithic; identical to any sharded campaign run."""
    points = campaign_points(seed=seed, smoke=smoke)
    return aggregate([run_point(p, seed) for p in points], seed=seed)
