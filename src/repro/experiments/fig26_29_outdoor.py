"""Figs 26-29: outdoor street-level experiments at 10 dBm.

26a/b: 24 h throughput; 27: occupancy; 28: throughput vs distance;
29: BER vs distance (LScatter/symbol-LTE stay <1% to ~200 ft; the WiFi
arm's BER shoots up past ~120 ft).

Campaign-capable: Figs 26/27 shard over hours, Figs 28/29 over the
tag-to-UE distance grid.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import SymbolLteModel, WifiBackscatterModel
from repro.baselines.freerider import WIFI_CARRIER_HZ, WIFI_SYSTEM_GAIN_DB
from repro.channel.link import LinkBudget
from repro.core.link_budget import LScatterLinkModel
from repro.experiments.diurnal_common import (
    hourly_throughput_row,
    occupancy_rows,
)
from repro.experiments.registry import ExperimentResult

#: Sweep grid for Figs 28/29 (feet, up to 320).
DISTANCES_FT = (20, 50, 80, 120, 160, 200, 250, 300)

ENB_TO_TAG_FT = 5.0

#: Smoke (CI) campaign grids.
SMOKE_HOURS = (0, 8, 12, 18)
SMOKE_DISTANCES_FT = (20, 120)


# -- diurnal points (Figs 26/27) ------------------------------------------------


def _diurnal_points(seed=0, smoke=False):
    hours = SMOKE_HOURS if smoke else tuple(range(24))
    return [{"hour": int(h)} for h in hours]


def _diurnal_point(params, seed):
    return hourly_throughput_row(
        venue_budget=LinkBudget(venue="outdoor"),
        traffic_venue="outdoor",
        hour=params["hour"],
        seed=seed,
        enb_to_tag_ft=5.0,
        tag_to_ue_ft=15.0,
    )


campaign_points_fig26 = _diurnal_points
campaign_points_fig27 = _diurnal_points
run_point_fig26 = _diurnal_point
run_point_fig27 = _diurnal_point


def aggregate_fig26(rows, seed=0):
    rows = list(rows)
    wifi_avg = float(np.mean([r["wifi_bs_kbps_median"] for r in rows]))
    return ExperimentResult(
        name="fig26",
        description="Outdoor 24 h throughput (10 dBm)",
        rows=rows,
        notes=(
            f"average WiFi backscatter {wifi_avg:.1f} kbps (paper: 16.9 kbps "
            "— thinner outdoor WiFi); LScatter stays at its full rate."
        ),
    )


def aggregate_fig27(rows, seed=0):
    return ExperimentResult(
        name="fig27",
        description="Outdoor traffic occupancy (WiFi vs LTE)",
        rows=occupancy_rows(rows),
    )


def run_fig26(seed=0):
    """Outdoor 24 h throughput: WiFi backscatter starves, LScatter holds."""
    points = _diurnal_points(seed=seed)
    return aggregate_fig26([_diurnal_point(p, seed) for p in points], seed)


def run_fig27(seed=0):
    """Outdoor occupancy: sparse WiFi, LTE at 1.0."""
    points = _diurnal_points(seed=seed)
    return aggregate_fig27([_diurnal_point(p, seed) for p in points], seed)


# -- distance points (Figs 28/29) -----------------------------------------------


def _distance_models():
    budget = LinkBudget(venue="outdoor")
    wifi_budget = LinkBudget(
        tx_power_dbm=15.0,
        carrier_hz=WIFI_CARRIER_HZ,
        venue="outdoor",
        system_gain_db=WIFI_SYSTEM_GAIN_DB,
    )
    return (
        LScatterLinkModel(20.0, budget),
        SymbolLteModel(budget=budget),
        WifiBackscatterModel(budget=wifi_budget),
    )


def _distance_points(seed=0, smoke=False):
    grid = SMOKE_DISTANCES_FT if smoke else DISTANCES_FT
    return [{"distance_ft": int(d)} for d in grid]


campaign_points_fig28 = _distance_points
campaign_points_fig29 = _distance_points


def run_point_fig28(params, seed):
    lscatter, symbol_lte, wifi = _distance_models()
    d = params["distance_ft"]
    return {
        "distance_ft": d,
        "wifi_backscatter_mbps": wifi.throughput_bps(0.9, ENB_TO_TAG_FT, d)
        / 1e6,
        "symbol_lte_mbps": symbol_lte.throughput_bps(ENB_TO_TAG_FT, d) / 1e6,
        "lscatter_mbps": lscatter.predict(ENB_TO_TAG_FT, d).throughput_bps
        / 1e6,
    }


def run_point_fig29(params, seed):
    lscatter, symbol_lte, wifi = _distance_models()
    d = params["distance_ft"]
    return {
        "distance_ft": d,
        "wifi_backscatter_ber": wifi.ber(ENB_TO_TAG_FT, d),
        "symbol_lte_ber": symbol_lte.ber(ENB_TO_TAG_FT, d),
        "lscatter_ber": lscatter.ber(ENB_TO_TAG_FT, d),
    }


def aggregate_fig28(rows, seed=0):
    return ExperimentResult(
        name="fig28",
        description="Outdoor throughput vs distance (10 dBm)",
        rows=list(rows),
        notes="Open space: higher throughput at equal distance than the mall.",
    )


def aggregate_fig29(rows, seed=0):
    lscatter, _, _ = _distance_models()
    ls200 = lscatter.ber(ENB_TO_TAG_FT, 200)
    return ExperimentResult(
        name="fig29",
        description="Outdoor BER vs distance (10 dBm)",
        rows=list(rows),
        notes=(
            f"LScatter BER at 200 ft: {ls200:.1e} (paper: LTE arms <1% to "
            "200 ft; WiFi arm rises sharply past 120 ft)."
        ),
    )


def run_fig28(seed=0):
    """Outdoor throughput vs distance — less multipath, longer reach."""
    points = _distance_points(seed=seed)
    return aggregate_fig28([run_point_fig28(p, seed) for p in points], seed)


def run_fig29(seed=0):
    """Outdoor BER vs distance."""
    points = _distance_points(seed=seed)
    return aggregate_fig29([run_point_fig29(p, seed) for p in points], seed)


run = run_fig26
