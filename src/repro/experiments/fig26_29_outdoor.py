"""Figs 26-29: outdoor street-level experiments at 10 dBm.

26a/b: 24 h throughput; 27: occupancy; 28: throughput vs distance;
29: BER vs distance (LScatter/symbol-LTE stay <1% to ~200 ft; the WiFi
arm's BER shoots up past ~120 ft).
"""

from __future__ import annotations

import numpy as np

from repro.baselines import SymbolLteModel, WifiBackscatterModel
from repro.baselines.freerider import WIFI_CARRIER_HZ, WIFI_SYSTEM_GAIN_DB
from repro.channel.link import LinkBudget
from repro.core.link_budget import LScatterLinkModel
from repro.experiments.diurnal_common import hourly_throughput_rows
from repro.experiments.registry import ExperimentResult

#: Sweep grid for Figs 28/29 (feet, up to 320).
DISTANCES_FT = (20, 50, 80, 120, 160, 200, 250, 300)

ENB_TO_TAG_FT = 5.0


def _diurnal_rows(seed):
    return hourly_throughput_rows(
        venue_budget=LinkBudget(venue="outdoor"),
        traffic_venue="outdoor",
        hours=range(24),
        seed=seed,
        enb_to_tag_ft=5.0,
        tag_to_ue_ft=15.0,
    )


def run_fig26(seed=0):
    """Outdoor 24 h throughput: WiFi backscatter starves, LScatter holds."""
    rows = _diurnal_rows(seed)
    wifi_avg = float(np.mean([r["wifi_bs_kbps_median"] for r in rows]))
    return ExperimentResult(
        name="fig26",
        description="Outdoor 24 h throughput (10 dBm)",
        rows=rows,
        notes=(
            f"average WiFi backscatter {wifi_avg:.1f} kbps (paper: 16.9 kbps "
            "— thinner outdoor WiFi); LScatter stays at its full rate."
        ),
    )


def run_fig27(seed=0):
    """Outdoor occupancy: sparse WiFi, LTE at 1.0."""
    rows = [
        {
            "hour": r["hour"],
            "wifi_occupancy": r["wifi_occupancy"],
            "lte_occupancy": r["lte_occupancy"],
        }
        for r in _diurnal_rows(seed)
    ]
    return ExperimentResult(
        name="fig27",
        description="Outdoor traffic occupancy (WiFi vs LTE)",
        rows=rows,
    )


def _distance_models():
    budget = LinkBudget(venue="outdoor")
    wifi_budget = LinkBudget(
        tx_power_dbm=15.0,
        carrier_hz=WIFI_CARRIER_HZ,
        venue="outdoor",
        system_gain_db=WIFI_SYSTEM_GAIN_DB,
    )
    return (
        LScatterLinkModel(20.0, budget),
        SymbolLteModel(budget=budget),
        WifiBackscatterModel(budget=wifi_budget),
    )


def run_fig28(seed=0):
    """Outdoor throughput vs distance — less multipath, longer reach."""
    lscatter, symbol_lte, wifi = _distance_models()
    rows = []
    for d in DISTANCES_FT:
        rows.append(
            {
                "distance_ft": d,
                "wifi_backscatter_mbps": wifi.throughput_bps(0.9, ENB_TO_TAG_FT, d)
                / 1e6,
                "symbol_lte_mbps": symbol_lte.throughput_bps(ENB_TO_TAG_FT, d) / 1e6,
                "lscatter_mbps": lscatter.predict(ENB_TO_TAG_FT, d).throughput_bps
                / 1e6,
            }
        )
    return ExperimentResult(
        name="fig28",
        description="Outdoor throughput vs distance (10 dBm)",
        rows=rows,
        notes="Open space: higher throughput at equal distance than the mall.",
    )


def run_fig29(seed=0):
    """Outdoor BER vs distance."""
    lscatter, symbol_lte, wifi = _distance_models()
    rows = []
    for d in DISTANCES_FT:
        rows.append(
            {
                "distance_ft": d,
                "wifi_backscatter_ber": wifi.ber(ENB_TO_TAG_FT, d),
                "symbol_lte_ber": symbol_lte.ber(ENB_TO_TAG_FT, d),
                "lscatter_ber": lscatter.ber(ENB_TO_TAG_FT, d),
            }
        )
    ls200 = lscatter.ber(ENB_TO_TAG_FT, 200)
    return ExperimentResult(
        name="fig29",
        description="Outdoor BER vs distance (10 dBm)",
        rows=rows,
        notes=(
            f"LScatter BER at 200 ft: {ls200:.1e} (paper: LTE arms <1% to "
            "200 ft; WiFi arm rises sharply past 120 ft)."
        ),
    )


run = run_fig26
