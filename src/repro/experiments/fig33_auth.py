"""Fig. 33b: continuous-authentication update rate vs tag-to-source distance."""

from __future__ import annotations

from repro.apps import ContinuousAuthApp
from repro.experiments.registry import ExperimentResult

#: Distances of the paper's sweep (feet).
DISTANCES_FT = (2, 8, 16, 24, 32, 40)


def run(seed=0):
    """Rows: update rate per distance, plus one end-to-end auth run."""
    rows = []
    for d in DISTANCES_FT:
        app = ContinuousAuthApp(enb_to_tag_ft=d, rng=seed)
        rows.append(
            {
                "tag_to_source_ft": d,
                "update_rate_sps": app.update_rate_sps(),
            }
        )
    # End-to-end check at close range: the app must tell users apart.
    app = ContinuousAuthApp(enb_to_tag_ft=2.0, rng=seed)
    report = app.run(duration_s=10.0)
    return ExperimentResult(
        name="fig33",
        description="Continuous authentication update rate vs distance",
        rows=rows,
        notes=(
            f"at 2 ft: accept(legit)={report.accept_rate_legit:.2f}, "
            f"reject(imposter)={report.reject_rate_imposter:.2f}; paper: "
            "136 sps at 2 ft falling to 5 sps at 40 ft."
        ),
    )
