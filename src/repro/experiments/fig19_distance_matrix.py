"""Fig. 19: throughput matrix over eNodeB-to-tag x tag-to-UE distances.

Campaign-capable: the eNodeB-to-tag axis is the shard grid — each point
is one matrix row (the inner tag-to-UE sweep stays inside the point), so
``repro campaign fig19 --shards N`` reproduces the monolithic matrix
bit-for-bit from any shard partition.
"""

from __future__ import annotations

from repro.channel.link import LinkBudget
from repro.core.link_budget import LScatterLinkModel
from repro.experiments.registry import ExperimentResult

#: Grid of the paper's matrix (feet).
DISTANCES_FT = (1, 5, 10, 15, 20, 25)


def campaign_points(seed=0, smoke=False, bandwidth_mhz=20.0):
    """One point per eNodeB-to-tag distance (smoke: the first two)."""
    grid = DISTANCES_FT[:2] if smoke else DISTANCES_FT
    return [
        {"enb_to_tag_ft": d1, "bandwidth_mhz": float(bandwidth_mhz)}
        for d1 in grid
    ]


def run_point(params, seed):
    """One matrix row: throughput at every tag-to-UE distance."""
    model = LScatterLinkModel(
        params["bandwidth_mhz"], LinkBudget(venue="smart_home")
    )
    d1 = params["enb_to_tag_ft"]
    row = {"enb_to_tag_ft": d1}
    for d2 in DISTANCES_FT:
        prediction = model.predict(d1, d2)
        row[f"ue@{d2}ft_mbps"] = prediction.throughput_bps / 1e6
    row["sync_availability"] = model.sync_availability(d1)
    return row


def aggregate(rows, seed=0):
    """Assemble the matrix rows into the figure's result."""
    return ExperimentResult(
        name="fig19",
        description="Throughput vs eNodeB-to-tag and tag-to-UE distance",
        rows=list(rows),
        notes=(
            "Within 15 ft of the eNodeB the link holds 4-13 Mbps; beyond "
            "that the tag's envelope sync availability collapses (paper: "
            "'if the tag is too far away from both, throughput drops quickly')."
        ),
    )


def run(seed=0, bandwidth_mhz=20.0):
    """Smart-home matrix at 10 dBm; one row per eNodeB-to-tag distance."""
    points = campaign_points(seed=seed, bandwidth_mhz=bandwidth_mhz)
    return aggregate([run_point(p, seed) for p in points], seed=seed)
