"""Fig. 19: throughput matrix over eNodeB-to-tag x tag-to-UE distances."""

from __future__ import annotations

from repro.channel.link import LinkBudget
from repro.core.link_budget import LScatterLinkModel
from repro.experiments.registry import ExperimentResult

#: Grid of the paper's matrix (feet).
DISTANCES_FT = (1, 5, 10, 15, 20, 25)


def run(seed=0, bandwidth_mhz=20.0):
    """Smart-home matrix at 10 dBm; one row per eNodeB-to-tag distance."""
    model = LScatterLinkModel(bandwidth_mhz, LinkBudget(venue="smart_home"))
    rows = []
    for d1 in DISTANCES_FT:
        row = {"enb_to_tag_ft": d1}
        for d2 in DISTANCES_FT:
            prediction = model.predict(d1, d2)
            row[f"ue@{d2}ft_mbps"] = prediction.throughput_bps / 1e6
        row["sync_availability"] = model.sync_availability(d1)
        rows.append(row)
    return ExperimentResult(
        name="fig19",
        description="Throughput vs eNodeB-to-tag and tag-to-UE distance",
        rows=rows,
        notes=(
            "Within 15 ft of the eNodeB the link holds 4-13 Mbps; beyond "
            "that the tag's envelope sync availability collapses (paper: "
            "'if the tag is too far away from both, throughput drops quickly')."
        ),
    )
