"""§4.8: tag power consumption per component and bandwidth."""

from __future__ import annotations

from repro.experiments.registry import ExperimentResult
from repro.lte.params import SUPPORTED_BANDWIDTHS_MHZ
from repro.tag.power import TagPowerModel


def run(seed=0, clock_technology="cots"):
    """Rows: one per bandwidth with the four component powers (uW)."""
    model = TagPowerModel(clock_technology)
    ring = TagPowerModel("ring")
    rows = []
    for bw in SUPPORTED_BANDWIDTHS_MHZ:
        breakdown = model.breakdown(bw)
        rows.append(
            {
                "bandwidth_mhz": float(bw),
                "sync_uw": breakdown.sync_w * 1e6,
                "rf_front_uw": breakdown.rf_front_w * 1e6,
                "baseband_uw": breakdown.baseband_w * 1e6,
                "clock_uw": breakdown.clock_w * 1e6,
                "total_uw": breakdown.total_uw,
                "total_ring_osc_uw": ring.breakdown(bw).total_uw,
            }
        )
    return ExperimentResult(
        name="power",
        description="Tag power consumption (paper §4.8)",
        rows=rows,
        notes=(
            "Anchors: 10 uW comparator, 57 uW switch @20 MHz, 82 uW "
            "baseband, 588 uW @1.92 MHz / 4.5 mW @30.72 MHz COTS clocks; "
            "ring oscillators cut the clock to single-digit uW."
        ),
    )
