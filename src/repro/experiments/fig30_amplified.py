"""Fig. 30: maximum tag-to-UE distance vs eNodeB-to-tag distance at 40 dBm.

Uses the ``outdoor_street`` venue (log-distance + linear clutter
absorption) calibrated to the figure's two endpoints — 320 ft of
tag-to-UE range when the tag is 2 ft from the eNodeB, ~160 ft at 24 ft —
then predicts the rest of the curve.
"""

from __future__ import annotations

from repro.channel.link import LinkBudget
from repro.core.link_budget import LScatterLinkModel
from repro.experiments.registry import ExperimentResult

#: eNodeB-to-tag anchor points (feet) from the paper's figure.
ENB_TO_TAG_FT = (2, 8, 16, 24, 32, 40)

#: Usable-link criterion: where BER exceeds this, the paper's testbed
#: stopped logging the link as working.
BER_TARGET = 3e-3


def run(seed=0, bandwidth_mhz=20.0):
    """Maximum workable tag-to-UE range per eNodeB-to-tag distance."""
    model = LScatterLinkModel(
        bandwidth_mhz,
        LinkBudget(venue="outdoor_street", tx_power_dbm=40.0),
    )
    rows = []
    for d1 in ENB_TO_TAG_FT:
        rows.append(
            {
                "enb_to_tag_ft": d1,
                "max_tag_to_ue_ft": model.max_range_ft(d1, ber_target=BER_TARGET),
                "sync_availability": model.sync_availability(d1),
            }
        )
    return ExperimentResult(
        name="fig30",
        description="eNodeB-to-tag vs maximum tag-to-UE distance (40 dBm)",
        rows=rows,
        notes=(
            "Anchors: paper reports 320 ft at 2 ft and 160 ft at 24 ft; the "
            "street-clutter absorption constant is calibrated to those two "
            "points and the rest of the curve is predicted."
        ),
    )
