"""Experiment harness: one module per table/figure of the paper.

Every module exposes ``run(seed=0, **kwargs) -> ExperimentResult`` whose
rows are the series the paper plots; the registry maps experiment ids
("fig16", "table1", ...) to those callables.  ``python -m
repro.experiments <id>`` prints any experiment as a table.
"""

from repro.experiments.registry import (
    ExperimentResult,
    REGISTRY,
    get_experiment,
    run_experiment,
)

__all__ = ["ExperimentResult", "REGISTRY", "get_experiment", "run_experiment"]
