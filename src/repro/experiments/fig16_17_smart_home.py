"""Figs 16/17: smart home over 24 hours — throughput and occupancy.

Campaign-capable: one shard per hour of the day.
"""

from __future__ import annotations

import numpy as np

from repro.channel.link import LinkBudget
from repro.experiments.diurnal_common import (
    hourly_throughput_row,
    occupancy_rows,
)
from repro.experiments.registry import ExperimentResult

#: Hours sampled by the smoke (CI) campaign grid.
SMOKE_HOURS = (0, 8, 12, 18)


def campaign_points(seed=0, smoke=False):
    hours = SMOKE_HOURS if smoke else tuple(range(24))
    return [{"hour": int(h)} for h in hours]


def run_point(params, seed):
    """One hour of the smart-home day (both figures share the row)."""
    return hourly_throughput_row(
        venue_budget=LinkBudget(venue="smart_home"),
        traffic_venue="home",
        hour=params["hour"],
        seed=seed,
        enb_to_tag_ft=3.0,
        tag_to_ue_ft=3.0,
    )


def aggregate_fig16(rows, seed=0):
    rows = list(rows)
    wifi_avg = float(np.mean([r["wifi_bs_kbps_median"] for r in rows]))
    lte_avg = float(np.mean([r["lscatter_mbps_median"] for r in rows]))
    return ExperimentResult(
        name="fig16",
        description="Smart home 24 h throughput (WiFi backscatter vs LScatter)",
        rows=rows,
        notes=(
            f"average WiFi backscatter {wifi_avg:.1f} kbps vs LScatter "
            f"{lte_avg:.2f} Mbps -> {lte_avg * 1e3 / max(wifi_avg, 1e-9):.0f}x "
            "(paper: 37 kbps vs 13.63 Mbps = 368x)"
        ),
    )


def aggregate_fig17(rows, seed=0):
    return ExperimentResult(
        name="fig17",
        description="Smart home 24 h traffic occupancy (WiFi vs LTE)",
        rows=occupancy_rows(rows),
        notes="LTE stays at 1.0 through the night; WiFi peaks in the evening.",
    )


def _rows(seed):
    return [run_point(p, seed) for p in campaign_points(seed=seed)]


def run_fig16(seed=0):
    """Throughput box-plot series: WiFi backscatter vs LScatter."""
    return aggregate_fig16(_rows(seed), seed=seed)


def run_fig17(seed=0):
    """Traffic occupancy ratio of WiFi and LTE over the same day."""
    return aggregate_fig17(_rows(seed), seed=seed)


run = run_fig16
