"""Figs 16/17: smart home over 24 hours — throughput and occupancy."""

from __future__ import annotations

import numpy as np

from repro.channel.link import LinkBudget
from repro.experiments.diurnal_common import hourly_throughput_rows
from repro.experiments.registry import ExperimentResult


def _rows(seed):
    return hourly_throughput_rows(
        venue_budget=LinkBudget(venue="smart_home"),
        traffic_venue="home",
        hours=range(24),
        seed=seed,
        enb_to_tag_ft=3.0,
        tag_to_ue_ft=3.0,
    )


def run_fig16(seed=0):
    """Throughput box-plot series: WiFi backscatter vs LScatter."""
    rows = _rows(seed)
    wifi_avg = float(np.mean([r["wifi_bs_kbps_median"] for r in rows]))
    lte_avg = float(np.mean([r["lscatter_mbps_median"] for r in rows]))
    return ExperimentResult(
        name="fig16",
        description="Smart home 24 h throughput (WiFi backscatter vs LScatter)",
        rows=rows,
        notes=(
            f"average WiFi backscatter {wifi_avg:.1f} kbps vs LScatter "
            f"{lte_avg:.2f} Mbps -> {lte_avg * 1e3 / max(wifi_avg, 1e-9):.0f}x "
            "(paper: 37 kbps vs 13.63 Mbps = 368x)"
        ),
    )


def run_fig17(seed=0):
    """Traffic occupancy ratio of WiFi and LTE over the same day."""
    rows = [
        {
            "hour": r["hour"],
            "wifi_occupancy": r["wifi_occupancy"],
            "lte_occupancy": r["lte_occupancy"],
        }
        for r in _rows(seed)
    ]
    return ExperimentResult(
        name="fig17",
        description="Smart home 24 h traffic occupancy (WiFi vs LTE)",
        rows=rows,
        notes="LTE stays at 1.0 through the night; WiFi peaks in the evening.",
    )


run = run_fig16
