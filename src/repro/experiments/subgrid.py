"""subgrid: cross-substrate goodput/BER vs distance and ambient occupancy.

One grid point per ``(substrate, arm, value)``: every registered
substrate mode (the chip scheme and its CRS-OOK / CRS-FSK / coded-pilot
/ uplink-SRS siblings, see :mod:`repro.substrates`) sweeps

* **distance** — tag-to-UE range at a per-substrate transmit power
  chosen so the ladder spans clean-link to heavily-degraded *without*
  saturating at BER 0.5 (the modes' sensitivities differ by tens of dB:
  a full-symbol correlation receiver shrugs off ranges that bury the
  per-chip slicer);
* **occupancy** — fraction of the ambient actually on air, modelled as
  seeded eNodeB dropout covering ``1 - occupancy`` of the capture.
  Fault placement is severity-independent (windows only widen as
  occupancy falls), which makes this arm monotone by construction.

:func:`aggregate` gates *every* (substrate, arm) curve on monotone
degradation — goodput non-increasing and BER non-decreasing along the
arm, within float slack — so a receiver regression in any one mode
fails the campaign, not just the mode's own unit tests.

Campaign-capable: each point is one pure ``run_point`` task, so
``repro campaign subgrid --shards N`` reproduces the monolithic rows
bit-for-bit from any shard partition.
"""

from __future__ import annotations

from repro.core.config import SystemConfig
from repro.core.system import LScatterSystem
from repro.experiments.registry import ExperimentResult
from repro.faults.plan import CarrierFaults, FaultPlan

#: Substrates swept, in comparison-table order.
SUBSTRATES = ("chip", "crs-ook", "crs-fsk", "coded-pilot", "srs-uplink")

#: Distance arm per substrate: (tx_power_dbm, tag_to_ue distances in ft).
#: Powers are tuned per mode so all three points sit between "clean" and
#: "degraded but not coin-flip" — see the module docstring.
DISTANCE_ARMS = {
    "chip": (-35.0, (3.0, 25.0, 60.0)),
    "crs-ook": (-35.0, (3.0, 60.0, 100.0)),
    "crs-fsk": (-35.0, (3.0, 60.0, 100.0)),
    "coded-pilot": (-35.0, (3.0, 40.0, 50.0)),
    "srs-uplink": (-75.0, (3.0, 20.0, 50.0)),
}

#: Ambient occupancy fractions swept (1.0 = always-on carrier).
OCCUPANCY_GRID = (1.0, 0.6, 0.3)

#: Seed of the dropout fault plan (fixed: positions must not move as
#: occupancy falls, so the gap windows are nested across the arm).
FAULT_SEED = 5

PAYLOAD_LENGTH = 4000
N_FRAMES = 2

#: Slack for the monotone-degradation gates (floats, not physics, get
#: the benefit of the doubt).
GATE_RELATIVE_SLACK = 1e-6


class MonotoneGateError(AssertionError):
    """A substrate's degradation curve violated monotonicity."""


def campaign_points(seed=0, smoke=False, substrate=None):
    """One point per (substrate, arm, value) — the campaign shard grid."""
    substrates = SUBSTRATES if substrate is None else (substrate,)
    points = []
    for mode in substrates:
        _power, distances = DISTANCE_ARMS[mode]
        dist_grid = (distances[0], distances[-1]) if smoke else distances
        occ_grid = (
            (OCCUPANCY_GRID[0], OCCUPANCY_GRID[-1]) if smoke else OCCUPANCY_GRID
        )
        points += [
            {"substrate": mode, "arm": "distance", "distance_ft": float(d)}
            for d in dist_grid
        ]
        points += [
            {"substrate": mode, "arm": "occupancy", "occupancy": float(o)}
            for o in occ_grid
        ]
    return points


def _config(mode, arm, value):
    if arm == "distance":
        power, _distances = DISTANCE_ARMS[mode]
        return SystemConfig(
            bandwidth_mhz=1.4,
            n_frames=N_FRAMES,
            reference_mode="genie",
            sync_mode="model",
            multipath=False,
            substrate=mode,
            enb_to_tag_ft=3.0,
            tag_to_ue_ft=float(value),
            tx_power_dbm=power,
        )
    occupancy = float(value)
    faults = None
    if occupancy < 1.0:
        faults = FaultPlan(
            carrier=CarrierFaults(dropout_rate=1.0 - occupancy),
            seed=FAULT_SEED,
        )
    return SystemConfig(
        bandwidth_mhz=1.4,
        n_frames=N_FRAMES,
        reference_mode="genie",
        sync_mode="model",
        multipath=False,
        substrate=mode,
        enb_to_tag_ft=3.0,
        tag_to_ue_ft=3.0,
        faults=faults,
    )


def run_point(params, seed):
    """One grid point; pure per ``(params, seed)`` so shards reproduce."""
    mode = params["substrate"]
    arm = params["arm"]
    value = params["distance_ft"] if arm == "distance" else params["occupancy"]
    config = _config(mode, arm, value)
    report = LScatterSystem(config, rng=seed).run(payload_length=PAYLOAD_LENGTH)
    row = {
        "substrate": mode,
        "arm": arm,
        "goodput_kbps": report.throughput_bps / 1e3,
        "ber": float(report.ber),
        "n_bits": int(report.n_bits),
        "n_erased": int(report.n_erased_windows),
    }
    if arm == "distance":
        row["distance_ft"] = float(value)
    else:
        row["occupancy"] = float(value)
    return row


def _arm_order(row):
    # Degradation order: distance ascending, occupancy *descending*.
    if row["arm"] == "distance":
        return row["distance_ft"]
    return -row["occupancy"]


def _gate_monotone(mode, arm, rows):
    """Goodput must not rise, BER must not fall, along one arm."""
    ordered = sorted(rows, key=_arm_order)
    axis = "distance_ft" if arm == "distance" else "occupancy"
    for prev, nxt in zip(ordered, ordered[1:]):
        slack = GATE_RELATIVE_SLACK * max(abs(prev["goodput_kbps"]), 1.0)
        if nxt["goodput_kbps"] > prev["goodput_kbps"] + slack:
            raise MonotoneGateError(
                f"substrate gate [{mode}/{arm}]: goodput rose from "
                f"{prev['goodput_kbps']:.6f} kbps at {axis}="
                f"{prev[axis]} to {nxt['goodput_kbps']:.6f} kbps at "
                f"{axis}={nxt[axis]}; a worse channel must not improve "
                "the link"
            )
        ber_slack = GATE_RELATIVE_SLACK * max(abs(prev["ber"]), 1.0)
        if nxt["ber"] < prev["ber"] - ber_slack:
            raise MonotoneGateError(
                f"substrate gate [{mode}/{arm}]: BER fell from "
                f"{prev['ber']:.3e} at {axis}={prev[axis]} to "
                f"{nxt['ber']:.3e} at {axis}={nxt[axis]}; a worse channel "
                "must not clean up the link"
            )
    return ordered


def aggregate(rows, seed=0):
    """Merge the grid rows; gates every (substrate, arm) curve."""
    rows = list(rows)
    ordered = []
    for mode in SUBSTRATES:
        for arm in ("distance", "occupancy"):
            arm_rows = [
                row
                for row in rows
                if row["substrate"] == mode and row["arm"] == arm
            ]
            if arm_rows:
                ordered += _gate_monotone(mode, arm, arm_rows)
    return ExperimentResult(
        name="subgrid",
        description=(
            "Cross-substrate goodput/BER vs tag-to-UE distance and vs "
            "ambient occupancy, one curve per registered substrate mode"
        ),
        rows=ordered,
        notes=(
            "Genie reference, model sync, multipath off; distance arms "
            "run at per-substrate transmit powers so every mode spans "
            "clean-to-degraded.  Every (substrate, arm) curve is gated "
            "monotone (goodput non-increasing, BER non-decreasing)."
        ),
    )


def run(seed=0, smoke=False, substrate=None):
    """The whole grid, monolithic; identical to any sharded campaign run."""
    points = campaign_points(seed=seed, smoke=smoke, substrate=substrate)
    return aggregate([run_point(p, seed) for p in points], seed=seed)
