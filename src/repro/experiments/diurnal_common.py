"""Shared machinery for the 24 h venue experiments (Figs 16/17, 21/22, 26/27).

Each hour draws from its own deterministic stream
(:func:`repro.utils.rng.stream_rng` keyed on ``(seed, hour)``) rather
than threading one generator through the day — so a diurnal sweep
produces identical rows whether the hours run monolithically, in any
order, or sharded across campaign jobs.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import PLoraModel, WifiBackscatterModel
from repro.baselines.freerider import WIFI_CARRIER_HZ, WIFI_SYSTEM_GAIN_DB
from repro.channel.link import LinkBudget
from repro.core.link_budget import LScatterLinkModel
from repro.traffic import hourly_occupancy
from repro.utils.rng import stream_rng

#: Independent throughput samples per hour (the paper's box plots).
SAMPLES_PER_HOUR = 24


def hourly_throughput_row(
    venue_budget,
    traffic_venue,
    hour,
    seed,
    enb_to_tag_ft=5.0,
    tag_to_ue_ft=8.0,
    bandwidth_mhz=20.0,
):
    """One hour's throughput distributions for LScatter and the baselines.

    Pure in ``(hour, seed)``: the hour's samples come from the
    ``(seed, hour)`` stream, independent of every other hour.  Returns a
    row with median/quartiles for WiFi backscatter (kbps) and LScatter
    (Mbps) plus the underlying occupancies.
    """
    rng = stream_rng(seed, int(hour))
    lscatter = LScatterLinkModel(bandwidth_mhz, venue_budget)
    wifi = WifiBackscatterModel(
        budget=LinkBudget(
            tx_power_dbm=15.0,
            carrier_hz=WIFI_CARRIER_HZ,
            venue=venue_budget.venue,
            system_gain_db=WIFI_SYSTEM_GAIN_DB,
        )
    )
    plora = PLoraModel()

    wifi_samples = []
    lte_samples = []
    wifi_occs = []
    for _ in range(SAMPLES_PER_HOUR):
        wifi_occ = hourly_occupancy("wifi", traffic_venue, hour, rng)
        wifi_occs.append(wifi_occ)
        wifi_samples.append(
            wifi.throughput_bps(wifi_occ, enb_to_tag_ft, tag_to_ue_ft)
        )
        # LScatter jitters with shadowing only; LTE occupancy is 1.
        prediction = lscatter.predict(enb_to_tag_ft, tag_to_ue_ft, rng=rng)
        lte_samples.append(prediction.throughput_bps)
    lora_occ = hourly_occupancy("lora", traffic_venue, hour, rng)
    wifi_samples = np.asarray(wifi_samples)
    lte_samples = np.asarray(lte_samples)
    return {
        "hour": int(hour),
        "wifi_bs_kbps_p25": float(np.percentile(wifi_samples, 25) / 1e3),
        "wifi_bs_kbps_median": float(np.median(wifi_samples) / 1e3),
        "wifi_bs_kbps_p75": float(np.percentile(wifi_samples, 75) / 1e3),
        "lscatter_mbps_p25": float(np.percentile(lte_samples, 25) / 1e6),
        "lscatter_mbps_median": float(np.median(lte_samples) / 1e6),
        "lscatter_mbps_p75": float(np.percentile(lte_samples, 75) / 1e6),
        "plora_bps": float(plora.throughput_bps(lora_occ)),
        "wifi_occupancy": float(np.mean(wifi_occs)),
        "lte_occupancy": 1.0,
    }


def hourly_throughput_rows(
    venue_budget,
    traffic_venue,
    hours,
    seed,
    enb_to_tag_ft=5.0,
    tag_to_ue_ft=8.0,
    bandwidth_mhz=20.0,
):
    """Per-hour throughput rows — one :func:`hourly_throughput_row` each."""
    return [
        hourly_throughput_row(
            venue_budget,
            traffic_venue,
            hour,
            seed,
            enb_to_tag_ft=enb_to_tag_ft,
            tag_to_ue_ft=tag_to_ue_ft,
            bandwidth_mhz=bandwidth_mhz,
        )
        for hour in hours
    ]


def occupancy_rows(rows):
    """Project the occupancy columns out of diurnal throughput rows."""
    return [
        {
            "hour": r["hour"],
            "wifi_occupancy": r["wifi_occupancy"],
            "lte_occupancy": r["lte_occupancy"],
        }
        for r in rows
    ]
