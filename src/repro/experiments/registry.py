"""Experiment registry and result container."""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field

#: Experiment id -> (module, one-line description).
_EXPERIMENTS = {
    "table1": ("repro.experiments.table1_features", "Excitation-signal feature matrix"),
    "fig04": ("repro.experiments.fig04_traffic_cdf", "Traffic occupancy CDFs (week)"),
    "fig08": ("repro.experiments.fig08_sync_stages", "Sync-circuit stage outputs"),
    "fig12": ("repro.experiments.fig12_constellation", "Phase-offset constellations"),
    "fig16": ("repro.experiments.fig16_17_smart_home", "Smart home 24 h throughput"),
    "fig17": ("repro.experiments.fig16_17_smart_home", "Smart home 24 h occupancy"),
    "fig18": ("repro.experiments.fig18_bandwidth", "Throughput vs LTE bandwidth"),
    "fig19": ("repro.experiments.fig19_distance_matrix", "Distance-matrix throughput"),
    "fig21": ("repro.experiments.fig21_22_mall", "Mall 10am-9pm throughput"),
    "fig22": ("repro.experiments.fig21_22_mall", "Mall occupancy"),
    "fig23": ("repro.experiments.fig23_24_mall_distance", "Mall throughput vs distance"),
    "fig24": ("repro.experiments.fig23_24_mall_distance", "Mall BER vs distance"),
    "fig26": ("repro.experiments.fig26_29_outdoor", "Outdoor 24 h throughput"),
    "fig27": ("repro.experiments.fig26_29_outdoor", "Outdoor occupancy"),
    "fig28": ("repro.experiments.fig26_29_outdoor", "Outdoor throughput vs distance"),
    "fig29": ("repro.experiments.fig26_29_outdoor", "Outdoor BER vs distance"),
    "fig30": ("repro.experiments.fig30_amplified", "40 dBm range matrix"),
    "fig31": ("repro.experiments.fig31_sync_accuracy", "Sync error CDF"),
    "fig32": ("repro.experiments.fig32_lte_impact", "Impact on LTE throughput"),
    "fig33": ("repro.experiments.fig33_auth", "Continuous-auth update rate"),
    "power": ("repro.experiments.power_table", "Tag power consumption (§4.8)"),
    "fleetn": ("repro.experiments.fleet_scaling", "Network throughput vs. tag count"),
    "netgrid": ("repro.experiments.netgrid", "Multi-cell goodput vs ISD / interferers"),
    "stressgrid": ("repro.experiments.stressgrid", "Goodput vs attack intensity per stress scenario"),
    "subgrid": ("repro.experiments.subgrid", "Cross-substrate goodput/BER vs distance and occupancy"),
}

REGISTRY = dict(_EXPERIMENTS)


@dataclass
class ExperimentResult:
    """Rows a paper table/figure reports, plus context."""

    name: str
    description: str
    rows: list = field(default_factory=list)
    notes: str = ""

    def columns(self):
        cols = []
        for row in self.rows:
            for key in row:
                if key not in cols:
                    cols.append(key)
        return cols

    def format_table(self, float_fmt="{:.4g}"):
        """Plain-text table of the rows."""
        cols = self.columns()
        lines = ["\t".join(cols)]
        for row in self.rows:
            cells = []
            for col in cols:
                value = row.get(col, "")
                if isinstance(value, float):
                    value = float_fmt.format(value)
                cells.append(str(value))
            lines.append("\t".join(cells))
        return "\n".join(lines)


def resolve_module(experiment_id):
    """Import and return the module backing an experiment id.

    Shared by the experiment runner and the campaign layer
    (:mod:`repro.campaign`), which probes the module for the
    ``campaign_points`` / ``run_point`` / ``aggregate`` protocol.
    """
    experiment_id = experiment_id.lower()
    if experiment_id not in _EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {sorted(_EXPERIMENTS)}"
        )
    module_name, _ = _EXPERIMENTS[experiment_id]
    return importlib.import_module(module_name)


def get_experiment(experiment_id):
    """Resolve an experiment id to its ``run`` callable."""
    experiment_id = experiment_id.lower()
    module = resolve_module(experiment_id)
    # Modules covering several figures expose run_<id>; single ones, run.
    specific = getattr(module, f"run_{experiment_id}", None)
    return specific if specific is not None else module.run


def run_experiment(experiment_id, seed=0, **kwargs):
    """Run one experiment by id."""
    return get_experiment(experiment_id)(seed=seed, **kwargs)
