"""Fig. 4c: CDF of traffic occupancy over a week, per technology/venue."""

from __future__ import annotations

import numpy as np

from repro.experiments.registry import ExperimentResult
from repro.traffic import occupancy_cdf, weekly_occupancy_samples
from repro.utils.rng import spawn_rngs

#: The seven curves of the paper's figure.
CURVES = (
    ("lte", "home"),
    ("wifi", "office"),
    ("wifi", "classroom"),
    ("wifi", "home"),
    ("lora", "home"),
    ("lora", "office"),
    ("lora", "classroom"),
)


def run(seed=0):
    """One week of samples per curve; rows carry CDF values on a grid."""
    rngs = spawn_rngs(seed, len(CURVES))
    grid = np.linspace(0.0, 1.0, 21)
    rows = []
    for (tech, venue), rng in zip(CURVES, rngs):
        samples = weekly_occupancy_samples(tech, venue, rng)
        _, cdf = occupancy_cdf(samples, grid)
        row = {"curve": f"{tech}-{venue}"}
        row.update({f"cdf@{g:.2f}": float(c) for g, c in zip(grid, cdf)})
        row["median"] = float(np.median(samples))
        rows.append(row)
    return ExperimentResult(
        name="fig04",
        description="CDF of traffic occupancy ratio (LTE vs WiFi vs LoRa)",
        rows=rows,
        notes=(
            "LTE occupancy is 1.0 everywhere; LoRa ~0.02; WiFi varies by "
            "venue with office the heaviest but still <0.5 for ~80% of time."
        ),
    )
