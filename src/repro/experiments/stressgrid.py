"""stressgrid: goodput/BER/sync-loss vs attack intensity per scenario.

The campaign-shaped face of :mod:`repro.stress`: one pure ``run_point``
task per (scenario, intensity) cell, so ``repro campaign stressgrid
--shards N`` reproduces the monolithic grid bit-for-bit from any shard
partition — and the nightly crash-and-resume drill can kill it mid-grid.

``aggregate`` enforces the two stress-layer invariants as gates:

* **no-op** — every scenario's intensity-0 row must report a
  bit-identical run against the unstressed pipeline (the intensity-0
  ``run_point`` performs the IQ comparison itself and records the
  verdict, keeping each point a pure function of ``(params, seed)``);
* **monotone degradation** — per scenario, goodput non-increasing and
  BER non-decreasing in intensity, within the same float slack as the
  netgrid interference gate.

Full grid: 6 scenarios x 5 intensities = 30 points.  Smoke: 2 scenarios
x 3 intensities = 6 points.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.registry import ExperimentResult
from repro.stress.scenarios import SCENARIOS, make_scenario_plan
from repro.stress.suite import _config, _run_point

#: Attack intensities swept per scenario.
INTENSITY_GRID = (0.0, 0.25, 0.5, 0.75, 1.0)
INTENSITY_GRID_SMOKE = (0.0, 0.5, 1.0)
#: Scenarios the smoke grid keeps (one jammer, one congestion shape).
SMOKE_SCENARIOS = ("sweep-jammer", "bursty-pdsch")
#: Relative slack for the monotone gates (floats, not physics, get the
#: benefit of the doubt) — matches the netgrid interference gate.
GATE_RELATIVE_SLACK = 1e-6

PAYLOAD_LENGTH = 20000
PAYLOAD_LENGTH_SMOKE = 6000


class MonotoneGateError(AssertionError):
    """A stress scenario violated monotone degradation."""


class NoopGateError(AssertionError):
    """A zero-intensity scenario was not a bit-identical no-op."""


def campaign_points(seed=0, smoke=False):
    """One point per (scenario, intensity) cell — the campaign grid."""
    scenarios = SMOKE_SCENARIOS if smoke else SCENARIOS
    intensities = INTENSITY_GRID_SMOKE if smoke else INTENSITY_GRID
    return [
        {"scenario": str(s), "intensity": float(i), "smoke": bool(smoke)}
        for s in scenarios
        for i in intensities
    ]


def _noop_identical(scenario, smoke, seed, payload_length):
    """Zero-intensity plan vs no plan: compare IQ and metrics in-point."""
    clean = _run_point(
        _config(smoke, plan=None, erasures=False),
        seed, payload_length, artifacts=True,
    )
    plan = make_scenario_plan(scenario, 0.0, _config(smoke).params, seed=seed)
    zeroed = _run_point(
        _config(smoke, plan=plan, erasures=False),
        seed, payload_length, artifacts=True,
    )
    a = clean.extras["artifacts"]
    b = zeroed.extras["artifacts"]
    return bool(
        np.array_equal(a.shifted_rx, b.shifted_rx)
        and np.array_equal(a.direct_rx, b.direct_rx)
        and clean.n_bits == zeroed.n_bits
        and clean.n_errors == zeroed.n_errors
    )


def run_point(params, seed):
    """One grid cell; pure per ``(params, seed)`` so shards reproduce."""
    scenario = params["scenario"]
    intensity = float(params["intensity"])
    smoke = bool(params.get("smoke", False))
    payload_length = PAYLOAD_LENGTH_SMOKE if smoke else PAYLOAD_LENGTH
    plan = (
        make_scenario_plan(
            scenario, intensity, _config(smoke).params, seed=seed
        )
        if intensity > 0
        else None
    )
    report = _run_point(_config(smoke, plan=plan), seed, payload_length)
    row = {
        "scenario": scenario,
        "intensity": intensity,
        "goodput_kbps": float(report.throughput_bps) / 1e3,
        "ber": float(report.ber) if report.n_bits else 0.0,
        "n_erased_windows": int(report.n_erased_windows),
        "sync_failed": bool(report.sync_failed),
    }
    if intensity == 0.0:
        row["noop_identical"] = _noop_identical(
            scenario, smoke, seed, payload_length
        )
    return row


def _gate_scenario(scenario, rows):
    """No-op at zero, then monotone degradation across the sweep."""
    ordered = sorted(rows, key=lambda row: row["intensity"])
    for row in ordered:
        if row["intensity"] == 0.0 and not row.get("noop_identical", True):
            raise NoopGateError(
                f"stress gate: scenario {scenario!r} at intensity 0 is not "
                "bit-identical to the unstressed run; the zero-intensity "
                "no-op contract is broken"
            )
    for prev, nxt in zip(ordered, ordered[1:]):
        slack = GATE_RELATIVE_SLACK * max(abs(prev["goodput_kbps"]), 1.0)
        if nxt["goodput_kbps"] > prev["goodput_kbps"] + slack:
            raise MonotoneGateError(
                f"stress gate: {scenario!r} goodput rose from "
                f"{prev['goodput_kbps']:.6f} kbps at intensity "
                f"{prev['intensity']:.2f} to {nxt['goodput_kbps']:.6f} kbps "
                f"at {nxt['intensity']:.2f}; turning the attack up must "
                "not improve the link"
            )
        ber_slack = GATE_RELATIVE_SLACK * max(abs(prev["ber"]), 1.0)
        if nxt["ber"] < prev["ber"] - ber_slack:
            raise MonotoneGateError(
                f"stress gate: {scenario!r} BER fell from "
                f"{prev['ber']:.3e} at intensity {prev['intensity']:.2f} to "
                f"{nxt['ber']:.3e} at {nxt['intensity']:.2f}; turning the "
                "attack up must not clean up the link"
            )
    return ordered


def aggregate(rows, seed=0):
    """Merge the grid rows; gates no-op and monotone degradation."""
    rows = list(rows)
    scenarios = []
    for row in rows:
        if row["scenario"] not in scenarios:
            scenarios.append(row["scenario"])
    gated = []
    for scenario in scenarios:
        gated += _gate_scenario(
            scenario, [r for r in rows if r["scenario"] == scenario]
        )
    return ExperimentResult(
        name="stressgrid",
        description=(
            "Goodput/BER/erasures vs attack intensity per adversarial "
            "scenario (see repro.stress.scenarios)"
        ),
        rows=gated,
        notes=(
            "Model sync, genie reference, erasure marking and per-window "
            "SNR gate on.  Gated: intensity 0 bit-identical to the "
            "unstressed run; goodput non-increasing and BER non-decreasing "
            "in intensity, per scenario."
        ),
    )


def run(seed=0, smoke=False):
    """The full grid, monolithic; identical to any sharded campaign run."""
    points = campaign_points(seed=seed, smoke=smoke)
    return aggregate([run_point(p, seed) for p in points], seed=seed)
