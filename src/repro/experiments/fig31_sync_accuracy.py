"""Fig. 31: CDF of the sync circuit's timing error.

Feeds many frames of ambient LTE through the analog chain and measures
each detection against the true PSS instant (the paper's baseline is a
USRP LTE receiver, which our ground truth stands in for).  The paper
finds ~90 % of errors within 30-40 us, roughly normal.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.registry import ExperimentResult
from repro.lte import LteTransmitter
from repro.lte.params import PSS_PERIOD_SECONDS
from repro.lte.pss import PSS_SYMBOL_IN_SLOT
from repro.tag.sync_circuit import SyncCircuit
from repro.utils.dsp import awgn
from repro.utils.rng import make_rng


def measure_sync_errors(seed=0, bandwidth_mhz=1.4, n_frames=20, snr_db=20.0):
    """Sync errors (seconds) for every PSS event in ``n_frames`` frames.

    The error convention follows the paper: comparator edge time minus
    the moment an LTE receiver knows the sync signals arrived (the start
    of the SSS+PSS region, our ground truth).  Positive errors are the
    analog chain's response delay.
    """
    from repro.lte.sss import SSS_SYMBOL_IN_SLOT

    rng = make_rng(seed)
    capture = LteTransmitter(bandwidth_mhz, rng=rng).transmit(n_frames)
    params = capture.params
    noisy = awgn(capture.samples, snr_db, rng)
    circuit = SyncCircuit(params.sample_rate_hz, rng=rng)
    result = circuit.process(noisy)

    sync_start = params.symbol_start(0, SSS_SYMBOL_IN_SLOT) / params.sample_rate_hz
    half = PSS_PERIOD_SECONDS
    true_times = sync_start + half * np.arange(2 * n_frames)
    errors = result.errors_vs(true_times, tolerance_seconds=2e-4)
    return np.asarray(errors)


def run(seed=0, n_frames=20):
    """Rows: the error CDF on a microsecond grid."""
    errors_us = measure_sync_errors(seed=seed, n_frames=n_frames) * 1e6
    grid = np.arange(0, 81, 5)
    rows = [
        {
            "error_us": float(g),
            "cdf": float(np.mean(errors_us <= g)) if len(errors_us) else 0.0,
        }
        for g in grid
    ]
    within = (
        float(np.mean((errors_us >= 20) & (errors_us <= 45)))
        if len(errors_us)
        else 0.0
    )
    return ExperimentResult(
        name="fig31",
        description="Synchronization error CDF",
        rows=rows,
        notes=(
            f"{len(errors_us)} events; mean {np.mean(errors_us):.1f} us, "
            f"std {np.std(errors_us):.1f} us; fraction in [20, 45] us: "
            f"{within:.2f} (paper: ~90% within 30-40 us)"
        ),
    )
