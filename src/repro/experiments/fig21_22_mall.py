"""Figs 21/22: shopping mall, 10 am - 9 pm — throughput and occupancy.

Campaign-capable: one shard per mall opening hour.
"""

from __future__ import annotations

from repro.channel.link import LinkBudget
from repro.experiments.diurnal_common import (
    hourly_throughput_row,
    occupancy_rows,
)
from repro.experiments.registry import ExperimentResult

#: Mall opening hours sampled by the paper.
MALL_HOURS = range(10, 22)

#: Hours sampled by the smoke (CI) campaign grid.
SMOKE_HOURS = (10, 15, 20)


def campaign_points(seed=0, smoke=False):
    hours = SMOKE_HOURS if smoke else tuple(MALL_HOURS)
    return [{"hour": int(h)} for h in hours]


def run_point(params, seed):
    """One hour of the mall day (both figures share the row)."""
    return hourly_throughput_row(
        venue_budget=LinkBudget(venue="shopping_mall"),
        traffic_venue="mall",
        hour=params["hour"],
        seed=seed,
        enb_to_tag_ft=5.0,
        tag_to_ue_ft=10.0,
    )


def aggregate_fig21(rows, seed=0):
    rows = list(rows)
    spread = [r["lscatter_mbps_p75"] - r["lscatter_mbps_p25"] for r in rows]
    return ExperimentResult(
        name="fig21",
        description="Shopping mall 10am-9pm throughput",
        rows=rows,
        notes=(
            f"LScatter interquartile spread <= {max(spread):.2f} Mbps (flat "
            "boxes); WiFi backscatter peaks around 8 pm."
        ),
    )


def aggregate_fig22(rows, seed=0):
    return ExperimentResult(
        name="fig22",
        description="Shopping mall traffic occupancy (WiFi vs LTE)",
        rows=occupancy_rows(rows),
        notes="WiFi occupancy approaches ~0.5 around 8 pm; LTE pegged at 1.0.",
    )


def _rows(seed):
    return [run_point(p, seed) for p in campaign_points(seed=seed)]


def run_fig21(seed=0):
    """Throughput 10am-9pm: WiFi backscatter fluctuates, LScatter is flat."""
    return aggregate_fig21(_rows(seed), seed=seed)


def run_fig22(seed=0):
    """Occupancy over mall hours."""
    return aggregate_fig22(_rows(seed), seed=seed)


run = run_fig21
