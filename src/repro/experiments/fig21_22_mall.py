"""Figs 21/22: shopping mall, 10 am - 9 pm — throughput and occupancy."""

from __future__ import annotations

import numpy as np

from repro.channel.link import LinkBudget
from repro.experiments.diurnal_common import hourly_throughput_rows
from repro.experiments.registry import ExperimentResult

#: Mall opening hours sampled by the paper.
MALL_HOURS = range(10, 22)


def _rows(seed):
    return hourly_throughput_rows(
        venue_budget=LinkBudget(venue="shopping_mall"),
        traffic_venue="mall",
        hours=MALL_HOURS,
        seed=seed,
        enb_to_tag_ft=5.0,
        tag_to_ue_ft=10.0,
    )


def run_fig21(seed=0):
    """Throughput 10am-9pm: WiFi backscatter fluctuates, LScatter is flat."""
    rows = _rows(seed)
    spread = [
        r["lscatter_mbps_p75"] - r["lscatter_mbps_p25"] for r in rows
    ]
    return ExperimentResult(
        name="fig21",
        description="Shopping mall 10am-9pm throughput",
        rows=rows,
        notes=(
            f"LScatter interquartile spread <= {max(spread):.2f} Mbps (flat "
            "boxes); WiFi backscatter peaks around 8 pm."
        ),
    )


def run_fig22(seed=0):
    """Occupancy over mall hours."""
    rows = [
        {
            "hour": r["hour"],
            "wifi_occupancy": r["wifi_occupancy"],
            "lte_occupancy": r["lte_occupancy"],
        }
        for r in _rows(seed)
    ]
    return ExperimentResult(
        name="fig22",
        description="Shopping mall traffic occupancy (WiFi vs LTE)",
        rows=rows,
        notes="WiFi occupancy approaches ~0.5 around 8 pm; LTE pegged at 1.0.",
    )


run = run_fig21
