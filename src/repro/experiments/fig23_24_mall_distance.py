"""Figs 23/24: mall distance sweeps — throughput and BER for the three arms."""

from __future__ import annotations

import numpy as np

from repro.baselines import SymbolLteModel, WifiBackscatterModel
from repro.channel.link import LinkBudget
from repro.core.link_budget import LScatterLinkModel
from repro.experiments.registry import ExperimentResult

#: Sweep grid (feet), as in the paper's 0-180 ft plots.
DISTANCES_FT = (10, 20, 40, 60, 80, 100, 120, 140, 160, 180)

#: eNodeB/AP-to-tag distance in the mall setup.
ENB_TO_TAG_FT = 5.0

#: WiFi traffic occupancy during the controlled distance tests (the
#: baseline tag was USRP-triggered on dense traffic).
WIFI_TEST_OCCUPANCY = 0.9


def _models():
    budget = LinkBudget(venue="shopping_mall")
    return (
        LScatterLinkModel(20.0, budget),
        SymbolLteModel(budget=budget),
        WifiBackscatterModel(),
    )


def run_fig23(seed=0):
    """Throughput vs distance (log-scale y in the paper)."""
    lscatter, symbol_lte, wifi = _models()
    rows = []
    crossover = None
    for d in DISTANCES_FT:
        wifi_bps = wifi.throughput_bps(WIFI_TEST_OCCUPANCY, ENB_TO_TAG_FT, d)
        sym_bps = symbol_lte.throughput_bps(ENB_TO_TAG_FT, d)
        ls_bps = lscatter.predict(ENB_TO_TAG_FT, d).throughput_bps
        if crossover is None and sym_bps > wifi_bps:
            crossover = d
        rows.append(
            {
                "distance_ft": d,
                "wifi_backscatter_mbps": wifi_bps / 1e6,
                "symbol_lte_mbps": sym_bps / 1e6,
                "lscatter_mbps": ls_bps / 1e6,
            }
        )
    return ExperimentResult(
        name="fig23",
        description="Mall: throughput vs distance for the three arms",
        rows=rows,
        notes=(
            f"symbol-level LTE overtakes WiFi backscatter at ~{crossover} ft "
            "(paper: ~80 ft); LScatter wins at every distance by ~2 orders."
        ),
    )


def run_fig24(seed=0):
    """BER vs distance (log-scale y in the paper)."""
    lscatter, symbol_lte, wifi = _models()
    rows = []
    for d in DISTANCES_FT:
        rows.append(
            {
                "distance_ft": d,
                "wifi_backscatter_ber": wifi.ber(ENB_TO_TAG_FT, d),
                "symbol_lte_ber": symbol_lte.ber(ENB_TO_TAG_FT, d),
                "lscatter_ber": lscatter.ber(ENB_TO_TAG_FT, d),
            }
        )
    ls40 = lscatter.ber(ENB_TO_TAG_FT, 40)
    ls150 = lscatter.ber(ENB_TO_TAG_FT, 150)
    return ExperimentResult(
        name="fig24",
        description="Mall: BER vs distance for the three arms",
        rows=rows,
        notes=(
            f"LScatter BER {ls40:.1e} at 40 ft (paper <0.1%) and {ls150:.1e} "
            "at 150 ft (paper <1%)."
        ),
    )


run = run_fig23
