"""Figs 23/24: mall distance sweeps — throughput and BER for the three arms.

Campaign-capable: one shard per tag-to-UE distance; Fig. 23 and Fig. 24
shard over the same grid with figure-specific point functions.
"""

from __future__ import annotations

from repro.baselines import SymbolLteModel, WifiBackscatterModel
from repro.channel.link import LinkBudget
from repro.core.link_budget import LScatterLinkModel
from repro.experiments.registry import ExperimentResult

#: Sweep grid (feet), as in the paper's 0-180 ft plots.
DISTANCES_FT = (10, 20, 40, 60, 80, 100, 120, 140, 160, 180)

#: eNodeB/AP-to-tag distance in the mall setup.
ENB_TO_TAG_FT = 5.0

#: WiFi traffic occupancy during the controlled distance tests (the
#: baseline tag was USRP-triggered on dense traffic).
WIFI_TEST_OCCUPANCY = 0.9

#: Smoke (CI) campaign grid.
SMOKE_DISTANCES_FT = (10, 100, 180)


def _models():
    budget = LinkBudget(venue="shopping_mall")
    return (
        LScatterLinkModel(20.0, budget),
        SymbolLteModel(budget=budget),
        WifiBackscatterModel(),
    )


def campaign_points(seed=0, smoke=False):
    grid = SMOKE_DISTANCES_FT if smoke else DISTANCES_FT
    return [{"distance_ft": int(d)} for d in grid]


def run_point_fig23(params, seed):
    lscatter, symbol_lte, wifi = _models()
    d = params["distance_ft"]
    return {
        "distance_ft": d,
        "wifi_backscatter_mbps": wifi.throughput_bps(
            WIFI_TEST_OCCUPANCY, ENB_TO_TAG_FT, d
        )
        / 1e6,
        "symbol_lte_mbps": symbol_lte.throughput_bps(ENB_TO_TAG_FT, d) / 1e6,
        "lscatter_mbps": lscatter.predict(ENB_TO_TAG_FT, d).throughput_bps
        / 1e6,
    }


def run_point_fig24(params, seed):
    lscatter, symbol_lte, wifi = _models()
    d = params["distance_ft"]
    return {
        "distance_ft": d,
        "wifi_backscatter_ber": wifi.ber(ENB_TO_TAG_FT, d),
        "symbol_lte_ber": symbol_lte.ber(ENB_TO_TAG_FT, d),
        "lscatter_ber": lscatter.ber(ENB_TO_TAG_FT, d),
    }


def aggregate_fig23(rows, seed=0):
    rows = list(rows)
    crossover = None
    for row in rows:
        if crossover is None and row["symbol_lte_mbps"] > row[
            "wifi_backscatter_mbps"
        ]:
            crossover = row["distance_ft"]
    return ExperimentResult(
        name="fig23",
        description="Mall: throughput vs distance for the three arms",
        rows=rows,
        notes=(
            f"symbol-level LTE overtakes WiFi backscatter at ~{crossover} ft "
            "(paper: ~80 ft); LScatter wins at every distance by ~2 orders."
        ),
    )


def aggregate_fig24(rows, seed=0):
    lscatter, _, _ = _models()
    ls40 = lscatter.ber(ENB_TO_TAG_FT, 40)
    ls150 = lscatter.ber(ENB_TO_TAG_FT, 150)
    return ExperimentResult(
        name="fig24",
        description="Mall: BER vs distance for the three arms",
        rows=list(rows),
        notes=(
            f"LScatter BER {ls40:.1e} at 40 ft (paper <0.1%) and {ls150:.1e} "
            "at 150 ft (paper <1%)."
        ),
    )


def run_fig23(seed=0):
    """Throughput vs distance (log-scale y in the paper)."""
    points = campaign_points(seed=seed)
    return aggregate_fig23([run_point_fig23(p, seed) for p in points], seed)


def run_fig24(seed=0):
    """BER vs distance (log-scale y in the paper)."""
    points = campaign_points(seed=seed)
    return aggregate_fig24([run_point_fig24(p, seed) for p in points], seed)


run = run_fig23
