"""Fig. 12: demodulated constellation, ideal vs phase-offset-rotated.

Demonstrates paper Eq. 5/6: an unsynchronised chip clock rotates the
whole constellation by a common phi; conjugate multiplication with a
reference value (Eq. 6) brings it back.
"""

from __future__ import annotations

import numpy as np

from repro.bsrx.phase_offset import apply_phase_offset, eliminate_phase_offset
from repro.experiments.registry import ExperimentResult
from repro.utils.rng import make_rng


def run(seed=0, n_points=256, phi_degrees=35.0):
    """BPSK chip constellation before/after Eq. 6 elimination."""
    rng = make_rng(seed)
    chips = 1.0 - 2.0 * rng.integers(0, 2, size=int(n_points)).astype(float)
    noise = 0.05 * (rng.standard_normal(n_points) + 1j * rng.standard_normal(n_points))
    ideal = chips + noise
    phi = np.deg2rad(phi_degrees)
    rotated = apply_phase_offset(ideal, phi)
    # Reference: a known pilot chip (+1) through the same rotation.
    reference = apply_phase_offset(np.array([1.0 + 0j]), phi)[0]
    corrected = rotated * np.conj(reference)

    def angle_spread(values):
        angles = np.angle(values * np.sign(np.real(values) + 1e-12))
        return float(np.sqrt(np.mean(angles**2)))

    rows = [
        {
            "constellation": "ideal",
            "mean_rotation_deg": 0.0,
            "decision_errors": int(np.sum((np.real(ideal) > 0) != (chips > 0))),
        },
        {
            "constellation": "phase-offset",
            "mean_rotation_deg": float(phi_degrees),
            "decision_errors": int(np.sum((np.real(rotated) > 0) != (chips > 0))),
        },
        {
            "constellation": "eliminated",
            "mean_rotation_deg": float(
                np.rad2deg(np.angle(np.sum(corrected * chips)))
            ),
            "decision_errors": int(np.sum((np.real(corrected) > 0) != (chips > 0))),
        },
    ]
    return ExperimentResult(
        name="fig12",
        description="Constellation rotation by phase offset and its elimination",
        rows=rows,
        notes="Eq. 6 removes the common rotation; decisions become error-free.",
    )
