"""Fig. 18: LScatter throughput under each LTE bandwidth, LoS and NLoS.

Runs the *IQ-level* system (not the closed-form model) for every
bandwidth: throughput must scale with the subcarrier count, and NLoS must
cost less than ~10 %.

Campaign-capable: one shard per bandwidth.  The LoS and NLoS arms of a
point share one eNodeB capture through the fleet's ambient cache (the
venue changes the channel, not the transmitter), and campaign workers
keep the capture in their process-global cache across shard retries.
"""

from __future__ import annotations

from repro.core import LScatterSystem, SystemConfig
from repro.experiments.registry import ExperimentResult
from repro.fleet.ambient import AmbientCache, process_cache
from repro.lte.params import SUPPORTED_BANDWIDTHS_MHZ


def _measure(bandwidth_mhz, nlos, seed, n_frames, ambient_seed, cache):
    config = SystemConfig(
        bandwidth_mhz=bandwidth_mhz,
        venue="smart_home_nlos" if nlos else "smart_home",
        enb_to_tag_ft=3.0,
        tag_to_ue_ft=3.0,
        n_frames=n_frames,
        reference_mode="genie",
    )
    # The ambient key ignores the venue, so the LoS and NLoS arms reuse
    # one transmit + OFDM modulation; only the channel rng differs.
    ambient = cache.get(config, ambient_seed)
    system = LScatterSystem(config, rng=seed)
    return system.run(payload_length=10_000_000, ambient=ambient)


def campaign_points(seed=0, smoke=False, bandwidths=None, n_frames=2):
    """One point per LTE bandwidth (smoke: the two narrowest)."""
    if bandwidths is None:
        bandwidths = (
            SUPPORTED_BANDWIDTHS_MHZ[:2] if smoke else SUPPORTED_BANDWIDTHS_MHZ
        )
    return [
        {"bandwidth_mhz": float(bw), "n_frames": int(n_frames)}
        for bw in bandwidths
    ]


def run_point(params, seed, cache=None):
    """LoS + NLoS runs at one bandwidth; returns the figure row."""
    if cache is None:
        cache = process_cache()
    bw = params["bandwidth_mhz"]
    n_frames = int(params.get("n_frames", 2))
    los = _measure(bw, False, seed, n_frames, ambient_seed=seed, cache=cache)
    nlos = _measure(
        bw, True, seed + 1, n_frames, ambient_seed=seed, cache=cache
    )
    drop = 1.0 - nlos.throughput_bps / max(los.throughput_bps, 1e-9)
    return {
        "bandwidth_mhz": float(bw),
        "los_throughput_mbps": los.throughput_bps / 1e6,
        "nlos_throughput_mbps": nlos.throughput_bps / 1e6,
        "los_ber": los.ber,
        "nlos_ber": nlos.ber,
        "nlos_drop_fraction": float(drop),
    }


def aggregate(rows, seed=0):
    return ExperimentResult(
        name="fig18",
        description="Throughput under different LTE bandwidths (LoS and NLoS)",
        rows=list(rows),
        notes=(
            "Throughput is proportional to bandwidth (subcarrier count); "
            "NLoS costs <10% (paper §4.3.2)."
        ),
    )


def run(seed=0, n_frames=2, bandwidths=None):
    """Rows: bandwidth x {LoS, NLoS} -> throughput and BER."""
    points = campaign_points(
        seed=seed, bandwidths=bandwidths, n_frames=n_frames
    )
    with AmbientCache() as cache:
        rows = [run_point(p, seed, cache=cache) for p in points]
    return aggregate(rows, seed=seed)
