"""Fig. 18: LScatter throughput under each LTE bandwidth, LoS and NLoS.

Runs the *IQ-level* system (not the closed-form model) for every
bandwidth: throughput must scale with the subcarrier count, and NLoS must
cost less than ~10 %.
"""

from __future__ import annotations

import numpy as np

from repro.core import LScatterSystem, SystemConfig
from repro.experiments.registry import ExperimentResult
from repro.lte.params import SUPPORTED_BANDWIDTHS_MHZ


def _measure(bandwidth_mhz, nlos, seed, n_frames):
    config = SystemConfig(
        bandwidth_mhz=bandwidth_mhz,
        venue="smart_home_nlos" if nlos else "smart_home",
        enb_to_tag_ft=3.0,
        tag_to_ue_ft=3.0,
        n_frames=n_frames,
        reference_mode="genie",
    )
    system = LScatterSystem(config, rng=seed)
    report = system.run(payload_length=10_000_000)
    return report


def run(seed=0, n_frames=2, bandwidths=None):
    """Rows: bandwidth x {LoS, NLoS} -> throughput and BER."""
    bandwidths = bandwidths or SUPPORTED_BANDWIDTHS_MHZ
    rows = []
    for bw in bandwidths:
        los = _measure(bw, False, seed, n_frames)
        nlos = _measure(bw, True, seed + 1, n_frames)
        drop = 1.0 - nlos.throughput_bps / max(los.throughput_bps, 1e-9)
        rows.append(
            {
                "bandwidth_mhz": float(bw),
                "los_throughput_mbps": los.throughput_bps / 1e6,
                "nlos_throughput_mbps": nlos.throughput_bps / 1e6,
                "los_ber": los.ber,
                "nlos_ber": nlos.ber,
                "nlos_drop_fraction": float(drop),
            }
        )
    return ExperimentResult(
        name="fig18",
        description="Throughput under different LTE bandwidths (LoS and NLoS)",
        rows=rows,
        notes=(
            "Throughput is proportional to bandwidth (subcarrier count); "
            "NLoS costs <10% (paper §4.3.2)."
        ),
    )
