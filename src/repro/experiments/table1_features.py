"""Table 1: excitation-signal features of existing backscatter systems."""

from __future__ import annotations

from repro.experiments.registry import ExperimentResult

#: system -> (ambient, continuous, ubiquitous), straight from Table 1.
SYSTEMS = {
    "NICScatter": (True, False, False),
    "ReMix": (False, False, False),
    "PLoRa": (True, False, False),
    "LoRa backscatter": (False, True, False),
    "Netscatter": (False, True, False),
    "FlipTracer": (False, False, False),
    "FS-Backscatter": (True, False, False),
    "WiFi backscatter": (True, False, False),
    "MOXcatter": (True, False, False),
    "X-Tandem": (True, False, False),
    "FreeRider": (True, False, False),
    "HitchHike": (True, False, False),
    "BackFi": (True, False, False),
    "Passive WiFi": (False, True, False),
    "Interscatter": (False, True, False),
    "LScatter": (True, True, True),
}


def run(seed=0):
    """Emit the feature matrix; LScatter must be the only all-check row."""
    rows = [
        {
            "system": name,
            "ambient": ambient,
            "continuous": continuous,
            "ubiquitous": ubiquitous,
        }
        for name, (ambient, continuous, ubiquitous) in SYSTEMS.items()
    ]
    return ExperimentResult(
        name="table1",
        description="Features of existing backscatters' excitation signals",
        rows=rows,
        notes="LScatter is the only system satisfying all three requirements.",
    )
