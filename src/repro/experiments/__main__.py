"""Command-line entry: ``python -m repro.experiments <id> [--seed N]``."""

from __future__ import annotations

import argparse
import sys

from repro.experiments.registry import REGISTRY, run_experiment


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Regenerate one of the paper's tables/figures."
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        help=f"experiment id, one of: {', '.join(sorted(REGISTRY))}",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--list", action="store_true", help="list experiments")
    parser.add_argument(
        "--substrate",
        default=None,
        help="ambient-substrate filter, for experiments that accept one "
        "(currently subgrid)",
    )
    args = parser.parse_args(argv)

    if args.list or not args.experiment:
        for key in sorted(REGISTRY):
            print(f"{key:8s} {REGISTRY[key][1]}")
        return 0

    kwargs = {}
    if args.substrate is not None:
        import inspect

        from repro.experiments.registry import get_experiment

        try:
            run_fn = get_experiment(args.experiment)
        except KeyError:
            run_fn = None
        if run_fn is not None and "substrate" not in inspect.signature(
            run_fn
        ).parameters:
            print(
                f"repro: error: experiment {args.experiment!r} does not "
                "take a --substrate filter",
                file=sys.stderr,
            )
            return 2
        kwargs["substrate"] = args.substrate
    result = run_experiment(args.experiment, seed=args.seed, **kwargs)
    print(f"# {result.name}: {result.description}")
    print(result.format_table())
    if result.notes:
        print(f"# {result.notes}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
