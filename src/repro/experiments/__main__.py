"""Command-line entry: ``python -m repro.experiments <id> [--seed N]``."""

from __future__ import annotations

import argparse
import sys

from repro.experiments.registry import REGISTRY, run_experiment


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Regenerate one of the paper's tables/figures."
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        help=f"experiment id, one of: {', '.join(sorted(REGISTRY))}",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--list", action="store_true", help="list experiments")
    args = parser.parse_args(argv)

    if args.list or not args.experiment:
        for key in sorted(REGISTRY):
            print(f"{key:8s} {REGISTRY[key][1]}")
        return 0

    result = run_experiment(args.experiment, seed=args.seed)
    print(f"# {result.name}: {result.description}")
    print(result.format_table())
    if result.notes:
        print(f"# {result.notes}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
