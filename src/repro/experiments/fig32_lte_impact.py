"""Fig. 32: impact of backscatter on the original LTE transmission.

Runs the IQ-level system with and without a tag present and decodes the
direct band with the full LTE receiver; the CDF of per-capture LTE
throughput should be indistinguishable (the backscatter is shifted out of
band; only a weak structural reflection stays in-band).
"""

from __future__ import annotations

import numpy as np

from repro.core import LScatterSystem, SystemConfig
from repro.experiments.registry import ExperimentResult


def _throughputs(bandwidth_mhz, with_tag, seed, n_captures, n_frames, modulation):
    from repro.lte.frame import CellConfig

    values = []
    for i in range(n_captures):
        config = SystemConfig(
            bandwidth_mhz=bandwidth_mhz,
            enb_to_tag_ft=3.0,
            tag_to_ue_ft=3.0,
            n_frames=n_frames,
            reference_mode="decoded",
            cell=CellConfig(modulation=modulation, code_rate=0.5),
            # "Without backscatter": push the structural reflection to
            # nothing and park the tag idle (all chips +1 = pure shift).
            structural_reflection_db=-15.0 if with_tag else -200.0,
        )
        system = LScatterSystem(config, rng=seed + i)
        payload = 10_000_000 if with_tag else 0
        report = system.run(payload_length=max(payload, 1))
        values.append(report.lte_throughput_bps)
    return np.array(values)


def run(seed=0, bandwidths=(1.4, 5.0, 20.0), n_captures=4, n_frames=1, modulation="64qam"):
    """Rows: per-bandwidth LTE throughput with/without backscatter."""
    rows = []
    for bw in bandwidths:
        without = _throughputs(bw, False, seed, n_captures, n_frames, modulation)
        with_tag = _throughputs(bw, True, seed + 100, n_captures, n_frames, modulation)
        rows.append(
            {
                "bandwidth_mhz": float(bw),
                "lte_mbps_without": float(np.mean(without) / 1e6),
                "lte_mbps_with": float(np.mean(with_tag) / 1e6),
                "impact_fraction": float(
                    1.0 - np.mean(with_tag) / max(np.mean(without), 1e-9)
                ),
            }
        )
    return ExperimentResult(
        name="fig32",
        description="LTE throughput with vs without backscatter",
        rows=rows,
        notes="Impact is negligible: the hybrid signal lives out of band.",
    )
