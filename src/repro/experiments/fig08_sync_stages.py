"""Fig. 8: outputs of each sync-circuit stage over 20 ms of ambient LTE."""

from __future__ import annotations

import numpy as np

from repro.experiments.registry import ExperimentResult
from repro.lte import LteTransmitter
from repro.tag.sync_circuit import SyncCircuit
from repro.utils.dsp import awgn
from repro.utils.rng import make_rng


def run(seed=0, bandwidth_mhz=1.4, snr_db=25.0, decimate_to=2000):
    """Run the analog chain on four frames; rows sample the *last* 20 ms
    of the three traces (the first frames warm the averaging RC up)."""
    rng = make_rng(seed)
    capture = LteTransmitter(bandwidth_mhz, rng=rng).transmit(4)
    noisy = awgn(capture.samples, snr_db, rng)
    circuit = SyncCircuit(capture.params.sample_rate_hz, rng=rng)
    result = circuit.process(noisy)

    fs = capture.params.sample_rate_hz
    window_start = len(result.envelope) - int(20e-3 * fs)
    stride = max((len(result.envelope) - window_start) // int(decimate_to), 1)
    idx = np.arange(window_start, len(result.envelope), stride)
    peak = float(np.max(result.envelope)) or 1.0
    rows = [
        {
            "time_ms": float((i - window_start) / fs * 1e3),
            "rc_filter": float(result.envelope[i] / peak),
            "signal_average": float(result.average[i] / peak),
            "pss_determination": int(result.comparator[i]),
        }
        for i in idx
    ]
    edges_ms = (result.edges - window_start) / fs * 1e3
    edges_ms = edges_ms[(edges_ms >= 0) & (edges_ms <= 20)]
    notes = (
        f"detected edges at {np.round(edges_ms, 2).tolist()} ms in the "
        "window (expect one ~every 5 ms, shortly after each PSS)"
    )
    return ExperimentResult(
        name="fig08",
        description="Outputs of each stage of the sync circuit",
        rows=rows,
        notes=notes,
    )
