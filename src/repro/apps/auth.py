"""Continuous authentication over an LScatter link (paper §5, Fig. 33).

A wearable EMG pad samples the user's muscle activity; every measurement
window is framed and backscattered to a laptop, which compares the
window's features against the enrolled template and keeps (or revokes)
the session.  The link layer is the calibrated LScatter model: each
update survives only if the tag's sync circuit saw the PSS *and* every
bit of the update packet demodulated correctly — which is what turns the
paper's Fig. 33b curve (136 updates/s at 2 ft falling to ~5 at 40 ft)
into a pure link-budget consequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.stats import norm

from repro.apps.emg import EmgGenerator, emg_features
from repro.core.link_budget import LScatterLinkModel, TAG_SENSITIVITY_DBM
from repro.channel.link import LinkBudget
from repro.utils.rng import make_rng

#: Attempted update rate: one EMG feature window every ~7 ms.
ATTEMPT_RATE_SPS = 136.0

#: Bits per update packet: 4 features x 16 bits + header/CRC.
UPDATE_PACKET_BITS = 96

#: Shadowing spread for a body-worn tag (movement adds variance beyond
#: the static-venue value).
BODY_SHADOWING_DB = 5.0


@dataclass
class AuthReport:
    """Outcome of one continuous-authentication run."""

    update_rate_sps: float
    attempted_sps: float
    accept_rate_legit: float
    reject_rate_imposter: float
    mean_updates_delivered: float = 0.0
    extras: dict = field(default_factory=dict)


class ContinuousAuthApp:
    """Wearable EMG authentication over a simulated LScatter link."""

    def __init__(
        self,
        enb_to_tag_ft=2.0,
        tag_to_ue_ft=3.0,
        bandwidth_mhz=20.0,
        venue="smart_home",
        rng=None,
    ):
        self.enb_to_tag_ft = float(enb_to_tag_ft)
        self.tag_to_ue_ft = float(tag_to_ue_ft)
        self.model = LScatterLinkModel(
            bandwidth_mhz, LinkBudget(venue=venue)
        )
        self.rng = make_rng(rng)

    # -- link layer ---------------------------------------------------------------

    def _sync_availability(self):
        """Per-attempt probability the tag is synchronised (body-worn)."""
        margin = (
            self.model.tag_incident_dbm(self.enb_to_tag_ft) - TAG_SENSITIVITY_DBM
        )
        return float(norm.cdf(margin / BODY_SHADOWING_DB))

    def update_success_probability(self):
        """P(one update delivered): sync available and packet error-free."""
        ber = self.model.ber(self.enb_to_tag_ft, self.tag_to_ue_ft)
        packet_ok = (1.0 - ber) ** UPDATE_PACKET_BITS
        return self._sync_availability() * packet_ok

    def update_rate_sps(self):
        """Expected delivered updates per second (paper Fig. 33b)."""
        return ATTEMPT_RATE_SPS * self.update_success_probability()

    # -- authentication -------------------------------------------------------------

    @staticmethod
    def enroll(user_id, n_windows=200, window_s=0.25, rng=None):
        """Build a user template: per-feature mean and spread."""
        generator = EmgGenerator(user_id, rng=rng)
        window_n = int(window_s * 1000)
        signal = generator.generate(n_windows * window_s)
        features = np.array(
            [
                emg_features(signal[i * window_n : (i + 1) * window_n])
                for i in range(n_windows)
            ]
        )
        return features.mean(axis=0), features.std(axis=0) + 1e-9

    @staticmethod
    def authenticate(window, template, threshold=3.5):
        """Accept if the window's features sit near the template."""
        mean, std = template
        distance = np.linalg.norm((emg_features(window) - mean) / std)
        return bool(distance < threshold)

    def run(self, legit_user=0, imposter_user=1, duration_s=20.0, window_s=0.25):
        """Stream both users' EMG over the link; returns an AuthReport."""
        template = self.enroll(legit_user, rng=self.rng)
        window_n = int(window_s * 1000)
        n_windows = int(duration_s / window_s)
        success_p = self.update_success_probability()

        outcomes = {}
        for label, user in (("legit", legit_user), ("imposter", imposter_user)):
            generator = EmgGenerator(user, rng=self.rng)
            signal = generator.generate(duration_s)
            accepted = 0
            delivered = 0
            for w in range(n_windows):
                if self.rng.random() > success_p:
                    continue  # update lost on the link
                delivered += 1
                window = signal[w * window_n : (w + 1) * window_n]
                if self.authenticate(window, template):
                    accepted += 1
            outcomes[label] = (accepted, delivered)

        legit_acc, legit_del = outcomes["legit"]
        imp_acc, imp_del = outcomes["imposter"]
        return AuthReport(
            update_rate_sps=self.update_rate_sps(),
            attempted_sps=ATTEMPT_RATE_SPS,
            accept_rate_legit=legit_acc / max(legit_del, 1),
            reject_rate_imposter=1.0 - imp_acc / max(imp_del, 1),
            mean_updates_delivered=(legit_del + imp_del) / 2.0,
        )
