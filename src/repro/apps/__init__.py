"""Applications built on LScatter (paper §5).

* :mod:`repro.apps.emg` + :mod:`repro.apps.auth` — continuous
  authentication from electromyography streamed over a backscatter link
  (paper Fig. 33).
* :mod:`repro.apps.sensing` — multi-tag smart-home telemetry with
  slot-level TDMA, the deployment §1 motivates.
"""

from repro.apps.emg import EmgGenerator, emg_features, FEATURE_NAMES
from repro.apps.auth import ContinuousAuthApp, AuthReport
from repro.apps.sensing import SensorNetwork, SensingReport

__all__ = [
    "EmgGenerator",
    "emg_features",
    "FEATURE_NAMES",
    "ContinuousAuthApp",
    "AuthReport",
    "SensorNetwork",
    "SensingReport",
]
