"""Multi-tag smart-home telemetry over LScatter.

The deployment §1 motivates: many sensor tags share one ambient LTE
carrier.  Because every tag synchronises to the same PSS, slots can be
assigned round-robin without any coordination channel — tag ``i``
modulates only the slots where ``slot_index mod n_tags == i``.  The
network model accounts for per-tag link quality and reports per-sensor
delivery statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.channel.link import LinkBudget
from repro.core.link_budget import LScatterLinkModel
from repro.tag.framing import DATA_SYMBOLS_PER_PACKET
from repro.utils.rng import make_rng

#: Slots (packets) per second under the tag schedule: 2 per half-frame
#: boundary x 10 slots = 200/s.
PACKETS_PER_SECOND = 200.0


@dataclass
class SensorTag:
    """One telemetry tag's geometry and payload size."""

    name: str
    enb_to_tag_ft: float
    tag_to_ue_ft: float
    reading_bits: int = 64


@dataclass
class SensingReport:
    """Delivery statistics for one simulated period."""

    per_tag_delivery: dict = field(default_factory=dict)
    per_tag_readings_per_s: dict = field(default_factory=dict)
    aggregate_readings_per_s: float = 0.0


class SensorNetwork:
    """Round-robin slot sharing among LScatter sensor tags."""

    def __init__(self, tags, bandwidth_mhz=20.0, venue="smart_home", rng=None):
        if not tags:
            raise ValueError("need at least one tag")
        self.tags = list(tags)
        self.model = LScatterLinkModel(bandwidth_mhz, LinkBudget(venue=venue))
        self.rng = make_rng(rng)

    def packet_success(self, tag):
        """P(one slot's packet delivers all its readings error-free)."""
        prediction = self.model.predict(tag.enb_to_tag_ft, tag.tag_to_ue_ft)
        packet_bits = (
            DATA_SYMBOLS_PER_PACKET * self.model.params.n_subcarriers
        )
        # A slot carries many readings; a reading survives if its own bits
        # do.  Success probability is per reading.
        return prediction.sync_availability * (1.0 - prediction.ber) ** tag.reading_bits

    def run(self, duration_s=10.0):
        """Simulate ``duration_s`` of round-robin telemetry."""
        n_tags = len(self.tags)
        slots_per_tag = PACKETS_PER_SECOND * duration_s / n_tags
        report = SensingReport()
        total = 0.0
        for tag in self.tags:
            p = self.packet_success(tag)
            delivered = self.rng.binomial(int(slots_per_tag), p)
            per_second = delivered / duration_s
            report.per_tag_delivery[tag.name] = p
            report.per_tag_readings_per_s[tag.name] = per_second
            total += per_second
        report.aggregate_readings_per_s = total
        return report
