"""Synthetic electromyography and the features used for authentication.

Surface EMG is well approximated by amplitude-modulated band-limited
Gaussian noise: muscle activations gate a noise carrier (20-450 Hz band)
whose envelope, burst cadence and spectral tilt differ per person.  The
generator produces per-user signals from a compact parameter set, and
``emg_features`` extracts the standard time-domain features (MAV, RMS,
zero crossings, waveform length) that wearable authentication uses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.signal import butter, lfilter

from repro.utils.rng import make_rng

#: Feature vector layout of :func:`emg_features`.
FEATURE_NAMES = ("mav", "rms", "zero_crossings", "waveform_length")

#: EMG sampling rate (Hz).
SAMPLE_RATE_HZ = 1000.0


@dataclass(frozen=True)
class UserProfile:
    """Per-user EMG characteristics."""

    burst_rate_hz: float  # muscle activation cadence
    burst_duty: float  # fraction of time active
    amplitude: float  # activation envelope scale
    tilt: float  # spectral tilt (low-pass pole position)


def profile_for_user(user_id):
    """Deterministic per-user profile from an integer identity."""
    rng = make_rng(f"emg-user-{int(user_id)}")
    return UserProfile(
        burst_rate_hz=float(rng.uniform(0.8, 2.5)),
        burst_duty=float(rng.uniform(0.3, 0.7)),
        amplitude=float(rng.uniform(0.6, 1.6)),
        tilt=float(rng.uniform(0.2, 0.8)),
    )


class EmgGenerator:
    """Generate a user's EMG stream at 1 kHz."""

    def __init__(self, user_id=0, rng=None):
        self.profile = profile_for_user(user_id)
        self.rng = make_rng(rng)
        nyquist = SAMPLE_RATE_HZ / 2.0
        self._band = butter(4, [20.0 / nyquist, 450.0 / nyquist], btype="band")

    def generate(self, duration_s):
        """EMG samples for ``duration_s`` seconds."""
        n = int(duration_s * SAMPLE_RATE_HZ)
        carrier = self.rng.standard_normal(n)
        b, a = self._band
        carrier = lfilter(b, a, carrier)
        # Spectral tilt: a gentle user-specific low-pass.
        carrier = lfilter([1.0 - self.profile.tilt], [1.0, -self.profile.tilt], carrier)
        # Activation envelope: smoothed on/off bursts.
        period = SAMPLE_RATE_HZ / self.profile.burst_rate_hz
        phase = (np.arange(n) + self.rng.integers(0, int(period))) % period
        gate = (phase < self.profile.burst_duty * period).astype(float)
        kernel = np.ones(50) / 50.0
        envelope = np.convolve(gate, kernel, mode="same")
        return self.profile.amplitude * envelope * carrier


def emg_features(window):
    """Time-domain features of one EMG window (see FEATURE_NAMES)."""
    window = np.asarray(window, dtype=float)
    if len(window) == 0:
        raise ValueError("empty window")
    mav = float(np.mean(np.abs(window)))
    rms = float(np.sqrt(np.mean(window**2)))
    zc = float(np.sum(np.diff(np.signbit(window)) != 0)) / len(window)
    wl = float(np.sum(np.abs(np.diff(window)))) / len(window)
    return np.array([mav, rms, zc, wl])
