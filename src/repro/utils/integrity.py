"""Cheap integrity primitives for on-disk scratch data.

CRC-32 is not cryptographic — it guards against truncation, bit rot and
stale/partial writes of the fleet's memory-mapped ambient spills, which is
exactly the failure family the fault model injects.
"""

from __future__ import annotations

import zlib

import numpy as np


def crc32_bytes(data):
    """CRC-32 of a bytes-like object (campaign checkpoint payloads)."""
    return zlib.crc32(bytes(data)) & 0xFFFFFFFF


def crc32_array(array):
    """CRC-32 of an array's raw little-endian bytes."""
    contiguous = np.ascontiguousarray(array)
    return zlib.crc32(memoryview(contiguous).cast("B")) & 0xFFFFFFFF


def crc32_file(path, chunk_bytes=1 << 20):
    """CRC-32 of a file's contents, streamed in chunks."""
    crc = 0
    with open(path, "rb") as fh:
        while True:
            chunk = fh.read(int(chunk_bytes))
            if not chunk:
                break
            crc = zlib.crc32(chunk, crc)
    return crc & 0xFFFFFFFF
