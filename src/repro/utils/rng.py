"""Deterministic random-number helpers.

Every stochastic component in the reproduction (channel fading, traffic
processes, payload generation, comparator jitter) takes a
``numpy.random.Generator``.  These helpers build them from integer seeds or
string labels so that experiments are reproducible run-to-run while still
letting independent subsystems draw independent streams.
"""

from __future__ import annotations

import zlib

import numpy as np


def make_rng(seed=None):
    """Return a ``numpy.random.Generator``.

    ``seed`` may be ``None`` (non-deterministic), an integer, a string
    (hashed stably with CRC32 so the same label always yields the same
    stream), or an existing ``Generator`` (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, str):
        seed = zlib.crc32(seed.encode("utf-8"))
    return np.random.default_rng(seed)


def stream_rng(seed, *key):
    """Independent deterministic stream for ``(seed, *key)``.

    Unlike threading one generator through a loop, every ``(seed, key)``
    combination gets its own non-overlapping stream — so a parameter sweep
    produces the same numbers whether its points run in one process, in
    any order, or sharded across many jobs (the campaign layer's
    requirement).  String components hash stably via CRC32.
    """
    entropy = []
    for part in (seed, *key):
        if isinstance(part, str):
            part = zlib.crc32(part.encode("utf-8"))
        entropy.append(int(part))
    return np.random.default_rng(np.random.SeedSequence(entropy))


def spawn_rngs(seed, count):
    """Spawn ``count`` statistically independent generators from one seed.

    Uses ``SeedSequence.spawn`` so child streams do not overlap.
    """
    if isinstance(seed, str):
        seed = zlib.crc32(seed.encode("utf-8"))
    children = np.random.SeedSequence(seed).spawn(int(count))
    return [np.random.default_rng(child) for child in children]
