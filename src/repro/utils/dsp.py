"""Small DSP primitives shared by the PHY layers.

Only generic signal-processing helpers live here; anything specific to LTE,
WiFi, or the tag belongs in its own subsystem package.
"""

from __future__ import annotations

import numpy as np


def normalized_correlation(signal, template):
    """Sliding normalised cross-correlation of ``template`` over ``signal``.

    Returns a real array of length ``len(signal) - len(template) + 1`` whose
    values lie in [0, 1]; 1.0 means a perfect (scaled/rotated) match.  Used
    by cell search and WiFi preamble detection.
    """
    signal = np.asarray(signal, dtype=complex)
    template = np.asarray(template, dtype=complex)
    n = len(template)
    if len(signal) < n:
        raise ValueError("signal shorter than template")
    # Cross-correlation via FFT-free sliding dot product; n is small enough
    # (<= a few thousand samples) that a strided approach is fine.
    corr = np.correlate(signal, template, mode="valid")
    # Rolling energy of the signal under the template window.
    power = np.abs(signal) ** 2
    window_energy = np.convolve(power, np.ones(n), mode="valid")
    template_energy = float(np.sum(np.abs(template) ** 2))
    denom = np.sqrt(window_energy * template_energy)
    with np.errstate(divide="ignore", invalid="ignore"):
        out = np.where(denom > 0, np.abs(corr) / denom, 0.0)
    return out


def moving_average(x, window):
    """Simple moving average with edge truncation (same length as input)."""
    x = np.asarray(x, dtype=float)
    if window <= 1:
        return x.copy()
    kernel = np.ones(int(window)) / float(window)
    return np.convolve(x, kernel, mode="same")


def rc_lowpass(x, alpha):
    """First-order RC low-pass filter: ``y[n] = y[n-1] + alpha (x[n] - y[n-1])``.

    ``alpha = dt / (tau + dt)`` for a continuous time constant ``tau``
    sampled every ``dt``.  Implemented with ``scipy.signal.lfilter`` for
    speed on long captures.
    """
    from scipy.signal import lfilter

    alpha = float(alpha)
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    return lfilter([alpha], [1.0, alpha - 1.0], np.asarray(x, dtype=float))


def rc_alpha(tau_seconds, sample_rate_hz):
    """Convert an RC time constant to the discrete filter coefficient."""
    dt = 1.0 / float(sample_rate_hz)
    return dt / (float(tau_seconds) + dt)


def frequency_shift(samples, shift_hz, sample_rate_hz, initial_phase=0.0):
    """Mix ``samples`` by ``shift_hz`` (complex exponential multiply)."""
    samples = np.asarray(samples, dtype=complex)
    n = np.arange(len(samples))
    mixer = np.exp(1j * (2.0 * np.pi * shift_hz * n / sample_rate_hz + initial_phase))
    return samples * mixer


def awgn(samples, snr_db, rng):
    """Add complex white Gaussian noise for a target per-sample SNR in dB.

    The signal power is measured from ``samples`` themselves; silent inputs
    get noise scaled to unit signal power so the call never divides by zero.
    """
    samples = np.asarray(samples, dtype=complex)
    power = float(np.mean(np.abs(samples) ** 2))
    if power <= 0.0:
        power = 1.0
    noise_power = power / (10.0 ** (snr_db / 10.0))
    scale = np.sqrt(noise_power / 2.0)
    noise = scale * (
        rng.standard_normal(len(samples)) + 1j * rng.standard_normal(len(samples))
    )
    return samples + noise


def bits_to_int(bits):
    """Interpret a bit array (MSB first) as a Python int."""
    value = 0
    for bit in np.asarray(bits, dtype=int):
        value = (value << 1) | int(bit)
    return value


def int_to_bits(value, width):
    """Convert an int to an MSB-first bit array of length ``width``."""
    if value < 0:
        raise ValueError("value must be non-negative")
    return np.array([(value >> (width - 1 - i)) & 1 for i in range(width)], dtype=np.int8)


def bit_errors(a, b):
    """Count positions where two equal-length bit arrays differ."""
    a = np.asarray(a, dtype=np.int8)
    b = np.asarray(b, dtype=np.int8)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return int(np.sum(a != b))
