"""Unit conversions used throughout the LScatter reproduction.

The paper reports distances in feet and powers in dBm; the physics layer
works in metres and watts.  Keeping the conversions in one place avoids the
usual scattering of ``10 ** (x / 10)`` expressions through the code base.
"""

from __future__ import annotations

import numpy as np

#: metres per foot (exact, by international agreement).
METERS_PER_FOOT = 0.3048

#: Boltzmann constant in J/K, used for thermal noise floors.
BOLTZMANN = 1.380649e-23

#: Reference temperature in kelvin for thermal noise (290 K is the
#: conventional "room temperature" used in link budgets).
T0_KELVIN = 290.0


def db_to_linear(db):
    """Convert a power ratio in dB to a linear ratio.

    Works element-wise on arrays.

    >>> db_to_linear(10.0)
    10.0
    >>> db_to_linear(0.0)
    1.0
    """
    return np.power(10.0, np.asarray(db, dtype=float) / 10.0)[()]


def linear_to_db(linear):
    """Convert a linear power ratio to dB.

    Values of zero map to ``-inf`` (with numpy's usual warning suppressed),
    which is the honest answer for "no power at all".
    """
    arr = np.asarray(linear, dtype=float)
    with np.errstate(divide="ignore"):
        return (10.0 * np.log10(arr))[()]


def dbm_to_watts(dbm):
    """Convert a power in dBm to watts.

    >>> dbm_to_watts(0.0)
    0.001
    >>> round(dbm_to_watts(30.0), 6)
    1.0
    """
    return np.power(10.0, (np.asarray(dbm, dtype=float) - 30.0) / 10.0)[()]


def watts_to_dbm(watts):
    """Convert a power in watts to dBm."""
    arr = np.asarray(watts, dtype=float)
    with np.errstate(divide="ignore"):
        return (10.0 * np.log10(arr) + 30.0)[()]


def feet_to_meters(feet):
    """Convert feet to metres (element-wise on arrays)."""
    return (np.asarray(feet, dtype=float) * METERS_PER_FOOT)[()]


def meters_to_feet(meters):
    """Convert metres to feet (element-wise on arrays)."""
    return (np.asarray(meters, dtype=float) / METERS_PER_FOOT)[()]


def thermal_noise_dbm(bandwidth_hz, noise_figure_db=0.0):
    """Thermal noise power over ``bandwidth_hz`` in dBm.

    ``kTB`` at 290 K plus a receiver noise figure.  For a 20 MHz LTE channel
    this is about -101 dBm before the noise figure.

    >>> round(thermal_noise_dbm(20e6), 1)
    -100.9
    """
    noise_watts = BOLTZMANN * T0_KELVIN * float(bandwidth_hz)
    return watts_to_dbm(noise_watts) + float(noise_figure_db)
