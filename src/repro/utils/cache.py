"""Process-level memoisation for deterministic sequences and layouts.

Every LTE frame reuses the same PSS Zadoff-Chu sequence, SSS m-sequences,
Gold/CRS pilots, subcarrier index maps, and OFDM symbol layout — all pure
functions of ``(params, cell)``-style keys.  Regenerating them per use was
measurable in the frame hot path (and multiplies across every tag of the
fleet engine), so the PHY modules memoise them here.

Design rules:

* cached values are **read-only**: ndarray results (including those inside
  tuples/namedtuples) get ``setflags(write=False)`` so a caller cannot
  corrupt every future user of the cache — mutating callers must copy;
* every cache registers itself in a module registry, so tests and the
  benchmark harness can inspect hit rates (:func:`cache_stats`) and reset
  global state (:func:`clear_caches`);
* keys must be hashable; :class:`~repro.lte.params.LteParams` is a frozen
  dataclass and is used directly as a key.
"""

from __future__ import annotations

import dataclasses
import functools
import threading

import numpy as np

from repro.obs import metrics as _obs_metrics

#: name -> cached callable, for introspection and global clearing.
_REGISTRY = {}
_LOCK = threading.Lock()


def _freeze(value):
    """Make a cached result immutable (recursing into tuples/dataclasses)."""
    if isinstance(value, np.ndarray):
        value.setflags(write=False)
        return value
    if isinstance(value, tuple):
        frozen = [_freeze(v) for v in value]
        cls = type(value)
        if hasattr(cls, "_fields"):  # namedtuple
            return cls(*frozen)
        return tuple(frozen)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        # setflags mutates the arrays in place, so a frozen dataclass's
        # fields can be locked without rebuilding the instance.
        for spec in dataclasses.fields(value):
            _freeze(getattr(value, spec.name))
        return value
    return value


def memoize(maxsize=None):
    """Memoise a deterministic function of hashable arguments.

    Results are frozen read-only (see :func:`_freeze`) and the cache is
    registered for :func:`cache_stats` / :func:`clear_caches`.

    >>> calls = []
    >>> @memoize()
    ... def seq(n):
    ...     calls.append(n)
    ...     return np.arange(n)
    >>> a, b = seq(3), seq(3)
    >>> a is b, calls, a.flags.writeable
    (True, [3], False)
    """

    def decorate(fn):
        @functools.lru_cache(maxsize=maxsize)
        def cached(*args, **kwargs):
            return _freeze(fn(*args, **kwargs))

        wrapper = functools.update_wrapper(cached, fn)
        with _LOCK:
            _REGISTRY[f"{fn.__module__}.{fn.__qualname__}"] = wrapper
        return wrapper

    return decorate


def cache_stats():
    """Per-cache ``{name: {hits, misses, maxsize, currsize}}`` snapshot."""
    with _LOCK:
        entries = dict(_REGISTRY)
    return {name: fn.cache_info()._asdict() for name, fn in entries.items()}


def _cache_totals():
    """Aggregate hit/miss/size totals across every registered cache.

    Registered as a pull-style collector with :mod:`repro.obs.metrics`,
    so metric snapshots report cache effectiveness without adding any
    counter work to the memoisation fast path.
    """
    totals = {"hits": 0, "misses": 0, "currsize": 0, "caches": 0}
    for stats in cache_stats().values():
        totals["hits"] += stats["hits"]
        totals["misses"] += stats["misses"]
        totals["currsize"] += stats["currsize"]
        totals["caches"] += 1
    return totals


_obs_metrics.register_collector("utils.cache", _cache_totals)


def clear_caches():
    """Empty every registered cache (used by tests; safe at any time)."""
    with _LOCK:
        entries = list(_REGISTRY.values())
    for fn in entries:
        fn.cache_clear()
