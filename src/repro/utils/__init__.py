"""Shared utilities: unit conversions, seeded RNG helpers, DSP primitives."""

from repro.utils.units import (
    db_to_linear,
    linear_to_db,
    dbm_to_watts,
    watts_to_dbm,
    feet_to_meters,
    meters_to_feet,
)
from repro.utils.rng import make_rng, spawn_rngs
from repro.utils.cache import cache_stats, clear_caches, memoize

__all__ = [
    "cache_stats",
    "clear_caches",
    "memoize",
    "db_to_linear",
    "linear_to_db",
    "dbm_to_watts",
    "watts_to_dbm",
    "feet_to_meters",
    "meters_to_feet",
    "make_rng",
    "spawn_rngs",
]
