"""Carrier-level fault injectors: impairments of the IQ stream.

Each injector implements ``apply(samples, rng) -> ndarray`` and the
zero-severity contract: when inactive it returns the *input array object*
untouched.  When active it always works on a copy (the input may be a
read-only memory map shared across worker processes).

Severity sweeps stay monotone by construction: every injector draws its
placement randomness (anchors, tone frequency/phase, per-sample uniforms)
with a severity-independent number of draws, and severity only *extends*
the affected region (nested windows / nested sample sets) or scales
amplitude.  The sample set impaired at severity ``s1`` is therefore a
subset of the set impaired at ``s2 > s1``, and unaffected samples are
bit-identical across the sweep.
"""

from __future__ import annotations

import numpy as np

from repro.obs import metrics as obs_metrics


def _rms(samples):
    value = float(np.sqrt(np.mean(np.abs(samples) ** 2))) if len(samples) else 0.0
    return value if value > 0.0 else 1.0


class AmbientDropout:
    """eNodeB gap: the ambient carrier goes dark for whole windows.

    Models scheduling gaps / cell outages — the dominant ambient-carrier
    failure for a passive tag, which has nothing to ride during the gap.
    """

    def __init__(self, rate, n_windows=3):
        self.rate = float(rate)
        self.n_windows = max(1, int(n_windows))

    @property
    def active(self):
        return self.rate > 0.0

    def apply(self, samples, rng):
        if not self.active:
            return samples
        n = len(samples)
        anchors = np.sort(rng.integers(0, n, size=self.n_windows))
        width = min(n, max(1, int(round(self.rate * n / self.n_windows))))
        out = np.array(samples)
        for anchor in anchors:
            # Wrap around the capture end so a window keeps growing with
            # rate instead of saturating against the boundary — coverage
            # then scales with rate for any anchor draw.
            idx = (np.arange(int(anchor), int(anchor) + width)) % n
            out[idx] = 0.0
        return out


class NarrowbandJammer:
    """A strong in-band CW interferer, bursting on and off.

    ``severity`` scales the total jammed fraction of the capture (burst
    extents grow around fixed anchors); the tone amplitude is a fixed
    multiple of the affected band's RMS, so already-jammed samples are
    identical across a severity sweep and new samples only get *added* to
    the jammed set.
    """

    def __init__(self, severity, n_bursts=2, amplitude_rel=4.0):
        self.severity = float(severity)
        self.n_bursts = max(1, int(n_bursts))
        self.amplitude_rel = float(amplitude_rel)

    @property
    def active(self):
        return self.severity > 0.0

    def apply(self, samples, rng):
        # Placement draws happen in a fixed order and count (anchors,
        # frequency, phase) so they are severity-independent.
        if not self.active:
            return samples
        n = len(samples)
        anchors = np.sort(rng.integers(0, n, size=self.n_bursts))
        freq = float(rng.uniform(-0.45, 0.45))  # cycles per sample
        phase = float(rng.uniform(0.0, 2.0 * np.pi))
        amp = self.amplitude_rel * _rms(samples)
        width = min(n, max(1, int(round(self.severity * n / self.n_bursts))))
        # One tone over the *union* of the bursts: where widened bursts
        # overlap, the sample still receives the tone exactly once, so
        # already-jammed samples stay identical as severity grows.  Bursts
        # wrap around the capture end so coverage scales with severity
        # instead of saturating against the boundary.
        mask = np.zeros(n, dtype=bool)
        for anchor in anchors:
            mask[(np.arange(int(anchor), int(anchor) + width)) % n] = True
        idx = np.flatnonzero(mask)
        out = np.array(samples)
        # Absolute sample index in the tone argument keeps a burst's
        # samples identical when a higher severity widens it.
        out[idx] += amp * np.exp(1j * (2.0 * np.pi * freq * idx + phase))
        return out


class ImpulsiveNoise:
    """Sparse high-amplitude impulses (switching transients, ignition)."""

    def __init__(self, rate, amplitude_rel=30.0):
        self.rate = float(rate)
        self.amplitude_rel = float(amplitude_rel)

    @property
    def active(self):
        return self.rate > 0.0

    def apply(self, samples, rng):
        if not self.active:
            return samples
        n = len(samples)
        # One uniform per sample: the hit set at rate r1 is nested inside
        # the hit set at r2 > r1, and each hit's phase is fixed.
        uniforms = rng.random(n)
        phases = rng.uniform(0.0, 2.0 * np.pi, size=n)
        mask = uniforms < self.rate
        if not mask.any():
            return samples
        out = np.array(samples)
        out[mask] += self.amplitude_rel * _rms(samples) * np.exp(1j * phases[mask])
        return out


class AdcClipper:
    """Receiver ADC saturation: magnitudes clipped at a shrinking level.

    Severity 0 leaves everything below the clip level; severity 1 clips at
    10 % of the capture's peak magnitude (phase is preserved — ideal
    limiter model of a saturated front end).
    """

    def __init__(self, severity):
        self.severity = float(severity)

    @property
    def active(self):
        return self.severity > 0.0

    def apply(self, samples, rng):
        if not self.active:
            return samples
        magnitude = np.abs(samples)
        peak = float(magnitude.max()) if len(samples) else 0.0
        if peak == 0.0:
            return samples
        level = peak * (1.0 - 0.9 * self.severity)
        scale = np.minimum(1.0, level / np.maximum(magnitude, 1e-30))
        return samples * scale


class CarrierFaultSet:
    """All carrier injectors of one :class:`~repro.faults.plan.FaultPlan`.

    Dropout hits the *transmitted* ambient (an eNodeB gap degrades the tag
    and the UE alike); jammer, impulses and clipping hit the backscatter
    receive chain, where the weak shifted-band signal is most vulnerable.
    """

    def __init__(self, plan):
        carrier = plan.carrier
        self._plan = plan
        self._dropout = AmbientDropout(carrier.dropout_rate, carrier.dropout_windows)
        self._jammer = NarrowbandJammer(
            carrier.jammer_severity, carrier.jammer_bursts, carrier.jammer_amplitude
        )
        self._impulse = ImpulsiveNoise(carrier.impulse_rate, carrier.impulse_amplitude)
        self._clipper = AdcClipper(carrier.clip_severity)

    @property
    def active(self):
        return any(
            injector.active
            for injector in (self._dropout, self._jammer, self._impulse, self._clipper)
        )

    def apply_ambient(self, unit):
        """Faults applied at the eNodeB: carrier dropout windows."""
        if self._dropout.active:
            obs_metrics.counter_inc("faults.activations.dropout")
        return self._dropout.apply(unit, self._plan.rng_for("dropout"))

    def apply_backscatter(self, rx):
        """Faults applied at the UE's backscatter band front end."""
        for name, injector in (
            ("jammer", self._jammer),
            ("impulse", self._impulse),
            ("clip", self._clipper),
        ):
            if injector.active:
                obs_metrics.counter_inc(f"faults.activations.{name}")
        rx = self._jammer.apply(rx, self._plan.rng_for("jammer"))
        rx = self._impulse.apply(rx, self._plan.rng_for("impulse"))
        return self._clipper.apply(rx, self._plan.rng_for("clip"))
