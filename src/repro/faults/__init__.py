"""Deterministic, seeded fault injection for every stage boundary.

The paper's premise is an *uncontrolled* ambient carrier; this package
makes the uncontrolled part first-class:

* :mod:`repro.faults.plan` — composable fault specifications
  (:class:`FaultPlan` = carrier + tag faults; :class:`InfraFaults` for the
  fleet substrate), with the hard contract that rate/severity 0 is a
  bit-identical no-op;
* :mod:`repro.faults.carrier` — IQ-stream injectors: ambient dropout
  windows, narrowband jammer bursts, impulsive noise, ADC clipping;
* :mod:`repro.faults.tag` — sync-chain injectors: PSS miss, comparator
  false fire, clock drift beyond the guard;
* :mod:`repro.faults.infra` — fleet-substrate injectors: worker crash,
  worker hang, scratch-file corruption;
* :mod:`repro.faults.chaos` — the ``repro chaos`` harness sweeping fault
  severity into degradation curves (``CHAOS_PR3.json``).  Imported lazily
  (``from repro.faults.chaos import run_chaos``) because it depends on the
  full pipeline.

Attach a :class:`FaultPlan` via ``SystemConfig(faults=...)``; graceful
degradation on the receive side (erasure marking, PSS re-acquisition) is
enabled with ``SystemConfig(erasure_threshold=...)``.
"""

from repro.faults.carrier import (
    AdcClipper,
    AmbientDropout,
    CarrierFaultSet,
    ImpulsiveNoise,
    NarrowbandJammer,
)
from repro.faults.infra import (
    FaultyTask,
    InjectedWorkerCrash,
    bitflip_file,
    truncate_file,
)
from repro.faults.plan import CarrierFaults, FaultPlan, InfraFaults, TagFaults
from repro.faults.tag import TagFaultInjector, drift_per_half_frame_samples

__all__ = [
    "AdcClipper",
    "AmbientDropout",
    "CarrierFaultSet",
    "ImpulsiveNoise",
    "NarrowbandJammer",
    "FaultyTask",
    "InjectedWorkerCrash",
    "bitflip_file",
    "truncate_file",
    "CarrierFaults",
    "FaultPlan",
    "InfraFaults",
    "TagFaults",
    "TagFaultInjector",
    "drift_per_half_frame_samples",
]
