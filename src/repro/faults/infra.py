"""Infrastructure fault injectors: break the fleet substrate, not the radio.

Two families:

* :class:`FaultyTask` wraps the pure per-tag task function and makes
  selected tasks crash or hang — **in worker processes only** (detected
  by PID), so the parent-process retry of the same pure task reproduces
  the clean result bit-for-bit.  This is how the chaos harness proves the
  hardened engine's recovery path, and why recovered fleet runs stay
  bit-identical to fault-free ones.
* Scratch-file corruptors (:func:`truncate_file`, :func:`bitflip_file`)
  damage an :class:`~repro.fleet.ambient.AmbientHandle` spill on disk the
  way a crashed writer or a reused stale path would; the cache's
  size+checksum verification must detect and regenerate them.
"""

from __future__ import annotations

import os
import time


class InjectedWorkerCrash(RuntimeError):
    """Raised inside a worker by :class:`FaultyTask` (crash injection)."""


class FaultyTask:
    """Picklable wrapper injecting worker-only crashes and hangs.

    ``fn(task)`` must be a module-level callable (it crosses the process
    boundary); tasks are identified by their ``index`` attribute, falling
    back to the task value itself for plain-integer task lists.
    """

    def __init__(self, fn, crash_tasks=(), hang_tasks=(), hang_seconds=30.0):
        self.fn = fn
        self.crash_tasks = frozenset(int(i) for i in crash_tasks)
        self.hang_tasks = frozenset(int(i) for i in hang_tasks)
        self.hang_seconds = float(hang_seconds)
        #: Recorded at construction (in the parent); a different PID at
        #: call time means we are inside a worker process.
        self.parent_pid = os.getpid()

    @classmethod
    def from_faults(cls, fn, faults):
        """Build from an :class:`~repro.faults.plan.InfraFaults` spec.

        ``None`` (or a spec with nothing to inject) returns ``fn``
        unwrapped — the zero-fault contract extends to the task layer.
        """
        if faults is None or not (faults.crash_tasks or faults.hang_tasks):
            return fn
        return cls(
            fn,
            crash_tasks=faults.crash_tasks,
            hang_tasks=faults.hang_tasks,
            hang_seconds=faults.hang_seconds,
        )

    @staticmethod
    def _index(task):
        index = getattr(task, "index", None)
        if index is None and isinstance(task, int):
            index = task
        return index

    def __call__(self, task):
        if os.getpid() != self.parent_pid:
            index = self._index(task)
            if index in self.crash_tasks:
                raise InjectedWorkerCrash(
                    f"injected crash in worker for task {index}"
                )
            if index in self.hang_tasks:
                time.sleep(self.hang_seconds)
        return self.fn(task)


def truncate_file(path, n_bytes=128):
    """Chop a scratch file down to ``n_bytes`` (simulates a killed writer)."""
    size = os.path.getsize(path)
    with open(path, "r+b") as fh:
        fh.truncate(min(int(n_bytes), size))


def bitflip_file(path, offset=None):
    """Flip one byte mid-file (simulates silent media/transfer corruption)."""
    size = os.path.getsize(path)
    if size == 0:
        return
    position = size // 2 if offset is None else int(offset) % size
    with open(path, "r+b") as fh:
        fh.seek(position)
        byte = fh.read(1)
        fh.seek(position)
        fh.write(bytes([byte[0] ^ 0xFF]))
