"""The chaos harness: sweep fault severity into degradation curves.

``repro chaos`` drives three experiments and writes one JSON report
(``CHAOS_PR3.json``):

1. **No-op contract** — a run with an explicit all-zero
   :class:`~repro.faults.plan.FaultPlan` must be bit-identical to a run
   with no plan at all: same metrics, same received IQ.  This is the
   regression gate that keeps fault hooks out of the clean pipeline.
2. **Degradation sweeps** — for each fault kind (ambient dropout,
   narrowband jammer, impulsive noise, ADC clipping, tag clock drift) the
   severity is swept from 0 to ``max_severity`` with erasure marking on.
   Because injector placement is severity-independent and coverage nests
   (see :mod:`repro.faults.plan`), goodput is monotone non-increasing by
   construction — the harness still verifies it point by point.
3. **Fleet resilience** — a multi-worker fleet with an injected worker
   crash and a hung worker must finish under the engine's timeout/retry
   machinery and reproduce the fault-free per-tag results bit for bit;
   a bit-flipped ambient scratch file must be detected and regenerated.

Erased windows are excluded from every BER/goodput figure (they feed the
link-layer ARQ path, not the bit counts).
"""

from __future__ import annotations

import json
import math
import os

import numpy as np

from repro.core.config import SystemConfig
from repro.core.system import LScatterSystem
from repro.faults.infra import bitflip_file
from repro.faults.plan import CarrierFaults, FaultPlan, InfraFaults, TagFaults
from repro.fleet.ambient import AmbientCache
from repro.fleet.deployment import Deployment
from repro.fleet.runner import FleetRunner

#: Fault kinds the sweep knows how to scale.  ``drift`` maps severity to
#: tag clock drift in ppm (severity 1.0 = 2000 ppm, far past the guard).
CHAOS_KINDS = ("dropout", "jammer", "impulse", "clipping", "drift")

#: Kinds whose affected-sample sets nest across severities (coverage
#: faults): goodput is monotone non-increasing by construction and the
#: harness enforces it.  ``drift`` is a *threshold* fault — chips stay
#: inside the guard slack until the accumulated walk exceeds it, and tiny
#: in-slack shifts can flip individual soft decisions either way — so it
#: is reported but not gated.
MONOTONE_KINDS = frozenset({"dropout", "jammer", "impulse", "clipping"})

DRIFT_PPM_AT_FULL_SEVERITY = 2000.0

#: Preamble mis-slice fraction above which a packet's windows are erased.
CHAOS_ERASURE_THRESHOLD = 0.35


def _config(smoke, plan=None, erasures=True):
    return SystemConfig(
        bandwidth_mhz=1.4,
        n_frames=2 if smoke else 4,
        reference_mode="genie",
        sync_mode="model",
        faults=plan,
        erasure_threshold=CHAOS_ERASURE_THRESHOLD if erasures else None,
    )


def _plan_for(kind, severity, seed):
    if kind == "dropout":
        carrier = CarrierFaults(dropout_rate=severity)
    elif kind == "jammer":
        carrier = CarrierFaults(jammer_severity=severity)
    elif kind == "impulse":
        carrier = CarrierFaults(impulse_rate=0.02 * severity)
    elif kind == "clipping":
        carrier = CarrierFaults(clip_severity=severity)
    elif kind == "drift":
        return FaultPlan(
            tag=TagFaults(clock_drift_ppm=severity * DRIFT_PPM_AT_FULL_SEVERITY),
            seed=seed,
        )
    else:
        raise ValueError(f"unknown chaos kind {kind!r}")
    return FaultPlan(carrier=carrier, seed=seed)


def _json_float(value):
    value = float(value)
    return None if math.isnan(value) else value


def _run_point(config, seed, payload_length, artifacts=False):
    system = LScatterSystem(config, rng=seed)
    return system.run(payload_length=payload_length, artifacts=artifacts)


def _point_record(severity, report):
    return {
        "severity": float(severity),
        "n_bits": int(report.n_bits),
        "n_errors": int(report.n_errors),
        "ber": _json_float(report.ber),
        "goodput_bps": _json_float(report.throughput_bps),
        "n_windows": int(report.n_windows),
        "n_lost_windows": int(report.n_lost_windows),
        "n_erased_windows": int(report.n_erased_windows),
        "sync_failed": bool(report.sync_failed),
    }


def _noop_contract(smoke, seed, payload_length):
    """Clean run vs explicit zero plan: metrics and IQ must match exactly."""
    clean = _run_point(
        _config(smoke, plan=None, erasures=False), seed, payload_length,
        artifacts=True,
    )
    zeroed = _run_point(
        _config(smoke, plan=FaultPlan.none(seed=seed), erasures=False),
        seed, payload_length, artifacts=True,
    )
    a = clean.extras["artifacts"]
    b = zeroed.extras["artifacts"]
    iq_identical = bool(
        np.array_equal(a.shifted_rx, b.shifted_rx)
        and np.array_equal(a.direct_rx, b.direct_rx)
    )
    metrics_identical = (
        clean.n_bits == zeroed.n_bits
        and clean.n_errors == zeroed.n_errors
        and clean.n_windows == zeroed.n_windows
        and clean.n_lost_windows == zeroed.n_lost_windows
    )
    return {
        "iq_identical": iq_identical,
        "metrics_identical": bool(metrics_identical),
        "passed": bool(iq_identical and metrics_identical),
        "n_bits": int(clean.n_bits),
        "n_errors": int(clean.n_errors),
    }


def _sweep(kind, severities, smoke, seed, payload_length):
    points = []
    for severity in severities:
        plan = _plan_for(kind, severity, seed) if severity > 0 else None
        report = _run_point(_config(smoke, plan=plan), seed, payload_length)
        points.append(_point_record(severity, report))
    goodputs = [p["goodput_bps"] or 0.0 for p in points]
    monotone = all(
        later <= earlier + 1e-9 for earlier, later in zip(goodputs, goodputs[1:])
    )
    return {
        "kind": kind,
        "points": points,
        "monotone_goodput": bool(monotone),
        "monotone_required": kind in MONOTONE_KINDS,
    }


def _tag_key(result):
    """The per-tag fields that must survive infrastructure faults intact."""
    return (
        result.name,
        result.n_bits,
        result.n_errors,
        result.n_windows,
        result.n_lost_windows,
        result.n_erased_windows,
    )


def _fleet_resilience(smoke, seed, payload_length):
    """Crash one worker, hang another, corrupt the scratch — still finish."""
    n_tags = 3
    deployment = Deployment.ring(
        n_tags, bandwidth_mhz=1.4, n_frames=2 if smoke else 4
    )

    with FleetRunner(deployment, workers=1, seed=seed) as runner:
        baseline = runner.run(payload_length=payload_length)

    # The hang outlasts the timeout budget on purpose: the engine must
    # detect the stuck worker, terminate it, and retry in the parent.
    faults = InfraFaults(crash_tasks=(0,), hang_tasks=(1,), hang_seconds=60.0)
    with FleetRunner(
        deployment,
        workers=2,
        seed=seed,
        task_timeout_seconds=3.0 if smoke else 15.0,
        on_error="partial",
        infra_faults=faults,
    ) as runner:
        faulted = runner.run(payload_length=payload_length)
        telemetry_retried = faulted.retried_tasks

    base_keys = sorted(_tag_key(t) for t in baseline.tags)
    fault_keys = sorted(_tag_key(t) for t in faulted.tags if not t.failed)
    bit_identical = base_keys == fault_keys and not any(
        t.failed for t in faulted.tags
    )

    # Scratch corruption: flip a byte mid-spill; the next handle() call
    # must notice (CRC) and silently regenerate.
    cache = AmbientCache()
    try:
        config = deployment.base_config()
        handle = cache.handle(config, seed)
        bitflip_file(handle.path)
        regenerated = cache.handle(config, seed)
        scratch = {
            "integrity_failures": int(cache.integrity_failures),
            "regenerated_intact": bool(
                regenerated.checksum is not None
                and regenerated.verify() is None
            ),
            "transmit_calls": int(cache.transmit_calls),
        }
    finally:
        cache.close()

    return {
        "n_tags": n_tags,
        "injected": {"crash_tasks": [0], "hang_tasks": [1]},
        "retried_tasks": int(telemetry_retried),
        "timed_out_tasks": int(faulted.timed_out_tasks),
        "failed_tags": int(faulted.failed_tags),
        "results_bit_identical": bool(bit_identical),
        "scratch_corruption": scratch,
        "passed": bool(
            bit_identical
            and scratch["integrity_failures"] >= 1
            and scratch["regenerated_intact"]
            # The ambient is generated once; regeneration re-spills the
            # same in-memory stage without a new transmit.
            and scratch["transmit_calls"] == 1
        ),
    }


def run_chaos(
    output="CHAOS_PR3.json",
    smoke=False,
    seed=0,
    max_severity=1.0,
    kinds=None,
    fleet=True,
):
    """Run the chaos suite; writes ``output`` and returns the report dict."""
    kinds = list(kinds) if kinds else list(CHAOS_KINDS)
    for kind in kinds:
        if kind not in CHAOS_KINDS:
            raise ValueError(
                f"unknown chaos kind {kind!r}; choose from {CHAOS_KINDS}"
            )
    fractions = (0.0, 0.5, 1.0) if smoke else (0.0, 0.25, 0.5, 0.75, 1.0)
    severities = [f * float(max_severity) for f in fractions]
    payload_length = 6000 if smoke else 20000

    report = {
        "meta": {
            "mode": "smoke" if smoke else "full",
            "seed": int(seed),
            "max_severity": float(max_severity),
            "kinds": kinds,
            "erasure_threshold": CHAOS_ERASURE_THRESHOLD,
            "payload_length": payload_length,
        },
        "noop_contract": _noop_contract(smoke, seed, payload_length),
        "sweeps": [
            _sweep(kind, severities, smoke, seed, payload_length)
            for kind in kinds
        ],
    }
    if fleet:
        report["fleet"] = _fleet_resilience(smoke, seed, payload_length)

    checks = [report["noop_contract"]["passed"]]
    checks += [
        s["monotone_goodput"] for s in report["sweeps"] if s["monotone_required"]
    ]
    if fleet:
        checks.append(report["fleet"]["passed"])
    report["passed"] = bool(all(checks))

    if output:
        parent = os.path.dirname(output)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(output, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
    return report
