"""Fault specifications: what can break, how often, and how hard.

Every knob is a *rate* or *severity* in ``[0, 1]`` (plus a few physical
scale parameters), and the hard contract across the whole subsystem is:

    **rate/severity 0 is a bit-identical no-op.**

An injector at zero must return its input array unchanged (the same
object, not a copy) and consume no randomness that any other stage sees.
All fault randomness is drawn from dedicated streams derived from
:attr:`FaultPlan.seed` via :meth:`FaultPlan.rng_for`, never from the
simulation's own RNG spawn — so attaching a zero plan to a run cannot
perturb payload, fading, noise or sync draws.

Placement randomness (where dropout windows and jammer bursts land) is
drawn *before* severity is used and with a severity-independent number of
draws, so a sweep over severities keeps the fault positions fixed and
only widens/strengthens them.  That makes degradation curves monotone by
construction instead of by luck (see :mod:`repro.faults.chaos`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.rng import make_rng


def _check_unit(name, value):
    if not 0.0 <= float(value) <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")


def _check_nonnegative(name, value):
    if not float(value) >= 0.0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")


@dataclass(frozen=True)
class CarrierFaults:
    """Impairments of the ambient carrier and the receiver front end."""

    #: Fraction of the capture inside eNodeB dropout (gap) windows.
    dropout_rate: float = 0.0
    #: Number of distinct dropout windows the fraction is spread over.
    dropout_windows: int = 3
    #: Fraction of the capture covered by narrowband jammer bursts.
    jammer_severity: float = 0.0
    #: Number of distinct jammer bursts.
    jammer_bursts: int = 2
    #: Jammer tone amplitude relative to the affected band's RMS.
    jammer_amplitude: float = 4.0
    #: Fraction of samples hit by impulsive (e.g. ignition/switching) noise.
    impulse_rate: float = 0.0
    #: Impulse amplitude relative to the affected band's RMS.
    impulse_amplitude: float = 30.0
    #: ADC clipping severity: 0 = no clipping, 1 = clip at 10 % of peak.
    clip_severity: float = 0.0

    def __post_init__(self):
        _check_unit("dropout_rate", self.dropout_rate)
        _check_unit("jammer_severity", self.jammer_severity)
        _check_unit("impulse_rate", self.impulse_rate)
        _check_unit("clip_severity", self.clip_severity)
        _check_nonnegative("jammer_amplitude", self.jammer_amplitude)
        _check_nonnegative("impulse_amplitude", self.impulse_amplitude)
        if self.dropout_windows < 1 or self.jammer_bursts < 1:
            raise ValueError("window/burst counts must be >= 1")

    @property
    def is_noop(self):
        return (
            self.dropout_rate == 0.0
            and self.jammer_severity == 0.0
            and self.impulse_rate == 0.0
            and self.clip_severity == 0.0
        )


@dataclass(frozen=True)
class TagFaults:
    """Failures of the tag's analog sync chain and clock."""

    #: Probability each comparator PSS edge is missed (dropped).
    pss_miss_rate: float = 0.0
    #: Per-half-frame probability of a spurious comparator edge
    #: (false fire on a data burst).
    false_fire_rate: float = 0.0
    #: Tag clock drift in ppm; accumulates between PSS re-syncs, so large
    #: values walk the chip windows out of the paper's 38.8 % guard.
    clock_drift_ppm: float = 0.0

    def __post_init__(self):
        _check_unit("pss_miss_rate", self.pss_miss_rate)
        _check_unit("false_fire_rate", self.false_fire_rate)

    @property
    def is_noop(self):
        return (
            self.pss_miss_rate == 0.0
            and self.false_fire_rate == 0.0
            and self.clock_drift_ppm == 0.0
        )


@dataclass(frozen=True)
class InfraFaults:
    """Failures of the fleet execution substrate (not the radio)."""

    #: Task indices whose worker raises (worker-process-only, so a parent
    #: retry of the pure task reproduces the clean result).
    crash_tasks: tuple = ()
    #: Task indices whose worker hangs for ``hang_seconds``.
    hang_tasks: tuple = ()
    hang_seconds: float = 30.0

    @property
    def is_noop(self):
        return not self.crash_tasks and not self.hang_tasks


@dataclass(frozen=True)
class FaultPlan:
    """One composable fault configuration for a run."""

    carrier: CarrierFaults = field(default_factory=CarrierFaults)
    tag: TagFaults = field(default_factory=TagFaults)
    seed: int = 0

    @property
    def is_noop(self):
        return self.carrier.is_noop and self.tag.is_noop

    def rng_for(self, name):
        """A dedicated, reproducible stream for one injector.

        Independent of the simulation seed and of every other injector;
        re-created per use so fault *positions* depend only on
        ``(name, plan seed)`` — not on severity or call order.
        """
        return make_rng(f"lscatter-fault:{name}:{int(self.seed)}")

    def carrier_fault_set(self):
        """The carrier injector set the pipeline applies for this plan.

        Subclasses (:class:`repro.stress.StressPlan`) override this to
        stack scenario stressors on top of the base carrier injectors
        without the pipeline knowing the difference.
        """
        from repro.faults.carrier import CarrierFaultSet

        return CarrierFaultSet(self)

    @classmethod
    def none(cls, seed=0):
        """An explicit all-zero plan (useful for no-op contract tests)."""
        return cls(seed=seed)
