"""Tag-side fault injectors: the analog sync chain and the tag clock.

The synchronization survey literature identifies sync loss/re-acquisition
as the dominant failure mode for low-power backscatter; these injectors
reproduce the three concrete mechanisms:

* **PSS miss** — the comparator fails to fire on a boosted sync symbol
  (low overdrive, envelope ripple); modelled as dropping detected edges.
* **Comparator false fire** — a data burst charges the RC fast enough to
  trip the comparator between sync symbols; modelled as spurious edges.
  The controller's median folding rejects occasional false fires; a high
  rate degrades the timing estimate.
* **Clock drift** — the tag's oscillator walks off between PSS events;
  the controller exposes it as an accumulating per-half-frame offset
  (``drift_per_half_frame``), which past the guard slack collapses the
  receiver's preamble correlation and surfaces as erasures.
"""

from __future__ import annotations

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.utils.rng import make_rng

#: The PSS repeats every half-frame (5 ms).
HALF_FRAME_SECONDS = 5e-3


class TagFaultInjector:
    """Perturb a :class:`~repro.tag.sync_circuit.SyncCircuit` edge train.

    Callable with ``(edges, n_samples, sample_rate_hz)``; at zero rates it
    returns the edges unchanged.  Uses its own RNG stream so attaching it
    never perturbs the circuit's jitter draws.
    """

    def __init__(self, faults, rng=None):
        self.faults = faults
        self.rng = make_rng(rng)

    @property
    def active(self):
        return self.faults.pss_miss_rate > 0.0 or self.faults.false_fire_rate > 0.0

    def __call__(self, edges, n_samples, sample_rate_hz):
        edges = np.asarray(edges, dtype=np.int64)
        faults = self.faults
        if self.active:
            obs_metrics.counter_inc("faults.activations.tag_sync")
        if faults.pss_miss_rate > 0.0 and len(edges):
            keep = self.rng.random(len(edges)) >= faults.pss_miss_rate
            edges = edges[keep]
        if faults.false_fire_rate > 0.0 and n_samples > 0:
            n_halves = max(
                1, int(n_samples / float(sample_rate_hz) / HALF_FRAME_SECONDS)
            )
            n_false = int(self.rng.binomial(n_halves, faults.false_fire_rate))
            if n_false:
                spurious = self.rng.integers(0, n_samples, size=n_false)
                edges = np.unique(np.concatenate([edges, spurious]))
        return edges


def drift_per_half_frame_samples(faults, params):
    """Clock-drift accumulation per half-frame, in samples.

    ``clock_drift_ppm`` of the tag clock over one 5 ms half-frame; the
    controller adds ``k * drift`` to the k-th half-frame's chip windows.
    """
    half_frame_samples = params.samples_per_frame / 2.0
    return faults.clock_drift_ppm * 1e-6 * half_frame_samples
