"""The stress harness: sweep attack intensity into degradation curves.

``repro stress`` drives four experiments per report (``STRESS_PR8.json``):

1. **No-op contract** — every scenario at intensity 0 must be
   bit-identical to a run with no plan at all: same metrics, same
   received IQ.  Inherited from the :mod:`repro.faults` contract via
   :class:`~repro.stress.plan.StressPlan`.
2. **Degradation sweeps** — each scenario's intensity is swept from 0 to
   ``max_intensity`` with erasure marking and the per-window SNR gate on.
   Stressor placement is intensity-independent and coverage nests (see
   :mod:`repro.stress.stressors`), so goodput is monotone non-increasing
   by construction — the harness still verifies it point by point, and
   ``repro stress`` exits non-zero when it does not hold.
3. **Sync probes** — the sync-coupled scenarios (PSS jammer, signalling
   storm) re-run at full intensity with the real comparator circuit, once
   without and once with the adaptive re-sync budget, reporting sync loss
   and the retries consumed.  Threshold-y, so reported but not gated
   (the chaos suite treats clock drift the same way).
4. **Graceful degradation** — the three mitigations under load: adaptive
   re-sync stays within its bounded budget, MAC congestion backoff yields
   during a storm with bounded quiet time and resumes after it, and ARQ
   over an erasure channel delivers bit-exact payloads with bounded
   retransmissions across the whole intensity sweep.
"""

from __future__ import annotations

import json
import math
import os

import numpy as np

from repro.core.config import SystemConfig
from repro.core.system import LScatterSystem
from repro.link.arq import BitErrorChannel, ErasureChannel, SelectiveRepeatArq
from repro.mac.schemes import PriorityScheme
from repro.stress.scenarios import SCENARIOS, SYNC_COUPLED, make_scenario_plan
from repro.utils.rng import make_rng

#: Preamble mis-slice fraction above which a packet's windows are erased.
STRESS_ERASURE_THRESHOLD = 0.35

#: Per-window SNR-gate (dB): data windows whose post-detection SNR proxy
#: falls below this escalate to erasures (see :mod:`repro.bsrx`).
STRESS_SNR_GATE_DB = 0.0

#: Adaptive re-sync retry budget used by the sync probes.
RESYNC_BUDGET = 3


def _config(smoke, plan=None, erasures=True, **overrides):
    kwargs = dict(
        bandwidth_mhz=1.4,
        n_frames=2 if smoke else 4,
        reference_mode="genie",
        sync_mode="model",
        faults=plan,
        erasure_threshold=STRESS_ERASURE_THRESHOLD if erasures else None,
        window_snr_gate_db=STRESS_SNR_GATE_DB if erasures else None,
    )
    kwargs.update(overrides)
    return SystemConfig(**kwargs)


def _params(smoke):
    """The LteParams the scenario stressors are built against."""
    return _config(smoke).params


def _json_float(value):
    value = float(value)
    return None if math.isnan(value) else value


def _run_point(config, seed, payload_length, artifacts=False):
    system = LScatterSystem(config, rng=seed)
    return system.run(payload_length=payload_length, artifacts=artifacts)


def _point_record(intensity, report):
    return {
        "intensity": float(intensity),
        "n_bits": int(report.n_bits),
        "n_errors": int(report.n_errors),
        "ber": _json_float(report.ber),
        "goodput_bps": _json_float(report.throughput_bps),
        "n_windows": int(report.n_windows),
        "n_lost_windows": int(report.n_lost_windows),
        "n_erased_windows": int(report.n_erased_windows),
        "sync_failed": bool(report.sync_failed),
    }


def _noop_contract(scenario, smoke, seed, payload_length):
    """Zero-intensity scenario plan vs no plan: bit-identical, or bust."""
    clean = _run_point(
        _config(smoke, plan=None, erasures=False),
        seed, payload_length, artifacts=True,
    )
    plan = make_scenario_plan(scenario, 0.0, _params(smoke), seed=seed)
    zeroed = _run_point(
        _config(smoke, plan=plan, erasures=False),
        seed, payload_length, artifacts=True,
    )
    a = clean.extras["artifacts"]
    b = zeroed.extras["artifacts"]
    iq_identical = bool(
        np.array_equal(a.shifted_rx, b.shifted_rx)
        and np.array_equal(a.direct_rx, b.direct_rx)
    )
    metrics_identical = (
        clean.n_bits == zeroed.n_bits
        and clean.n_errors == zeroed.n_errors
        and clean.n_windows == zeroed.n_windows
        and clean.n_lost_windows == zeroed.n_lost_windows
    )
    return {
        "scenario": scenario,
        "iq_identical": iq_identical,
        "metrics_identical": bool(metrics_identical),
        "passed": bool(iq_identical and metrics_identical),
    }


def _sweep(scenario, intensities, smoke, seed, payload_length):
    points = []
    params = _params(smoke)
    for intensity in intensities:
        plan = (
            make_scenario_plan(scenario, intensity, params, seed=seed)
            if intensity > 0
            else None
        )
        report = _run_point(_config(smoke, plan=plan), seed, payload_length)
        points.append(_point_record(intensity, report))
    goodputs = [p["goodput_bps"] or 0.0 for p in points]
    monotone = all(
        later <= earlier + 1e-9 for earlier, later in zip(goodputs, goodputs[1:])
    )
    return {
        "scenario": scenario,
        "points": points,
        "monotone_goodput": bool(monotone),
        "monotone_required": True,
    }


def _sync_probe(scenario, max_intensity, smoke, seed, payload_length):
    """Full-intensity attack against the real comparator circuit.

    Runs the scenario twice in ``sync_mode="circuit"`` — legacy
    single-pass, then with the adaptive re-sync budget — and reports
    whether sync survived and how many retries that took.  The attempt
    count must stay within the budget (bounded backoff); whether sync
    *recovers* depends on how deep the attack buries the PSS boost, so
    recovery is reported, not gated.
    """
    params = _params(smoke)
    plan = make_scenario_plan(scenario, max_intensity, params, seed=seed)
    records = {}
    for label, budget in (("single-pass", 0), ("adaptive", RESYNC_BUDGET)):
        config = _config(
            smoke, plan=plan, sync_mode="circuit", sync_resync_attempts=budget
        )
        report = _run_point(config, seed, payload_length, artifacts=True)
        sync = report.extras["artifacts"].sync_result
        records[label] = {
            "sync_failed": bool(report.sync_failed),
            "resync_attempts": int(getattr(sync, "resync_attempts", 0)),
            "threshold_margin": _json_float(
                getattr(sync, "threshold_margin", 0.0)
            ),
            "goodput_bps": _json_float(report.throughput_bps),
        }
    bounded = records["adaptive"]["resync_attempts"] <= RESYNC_BUDGET
    recovered = (
        records["single-pass"]["sync_failed"]
        and not records["adaptive"]["sync_failed"]
    )
    return {
        "scenario": scenario,
        "intensity": float(max_intensity),
        "single_pass": records["single-pass"],
        "adaptive": records["adaptive"],
        "attempts_bounded": bool(bounded),
        "resync_recovered": bool(recovered),
    }


def _mac_backoff_probe(n_slots=400, storm=(100, 220), max_backoff_slots=8):
    """Congestion backoff through a storm: yield, stay bounded, resume."""
    scheme = PriorityScheme(
        congestion_backoff=True, max_backoff_slots=max_backoff_slots
    )
    tags = ["tag00", "tag01"]
    rng = make_rng("stress-mac")
    transmitted_before = transmitted_during = transmitted_after = 0
    max_backoff_seen = 0
    first_resume = None
    for slot in range(n_slots):
        congested = storm[0] <= slot < storm[1]
        active = scheme.transmitters(slot, tags, rng)
        scheme.observe_congestion(slot, congested)
        max_backoff_seen = max(max_backoff_seen, scheme.backoff_slots)
        if active:
            if slot < storm[0]:
                transmitted_before += 1
            elif slot < storm[1]:
                transmitted_during += 1
            else:
                transmitted_after += 1
                if first_resume is None:
                    first_resume = slot
    recovery_latency = (
        first_resume - storm[1] if first_resume is not None else n_slots
    )
    return {
        "n_slots": n_slots,
        "storm_slots": list(storm),
        "max_backoff_slots": max_backoff_slots,
        "transmitted_before": transmitted_before,
        "transmitted_during_storm": transmitted_during,
        "transmitted_after": transmitted_after,
        "max_backoff_seen": max_backoff_seen,
        "recovery_latency_slots": recovery_latency,
        # Bounded: the yield window never exceeds the cap, so however long
        # the storm lasts the fleet re-probes within max_backoff_slots of
        # its end; graceful: it yields during the storm yet resumes after.
        "passed": bool(
            max_backoff_seen <= max_backoff_slots
            and recovery_latency <= max_backoff_slots + 1
            and transmitted_during < (storm[1] - storm[0])
            and transmitted_after > 0
        ),
    }


def _arq_jamming_probe(intensities, seed, payload_bits=4096):
    """ARQ over a jammed erasure pipe: bit-exact, bounded retransmissions."""
    rng = make_rng(f"stress-arq:{seed}")
    payload = rng.integers(0, 2, size=payload_bits).astype(np.int8)
    arq = SelectiveRepeatArq(mtu_bits=256, window=8, max_rounds=500)
    points = []
    all_exact = True
    all_bounded = True
    for intensity in intensities:
        channel = ErasureChannel(
            BitErrorChannel(0.002 * intensity, rng=make_rng(f"ber:{intensity}")),
            erasure_rate=0.5 * intensity,
            rng=make_rng(f"erase:{intensity}"),
        )
        recovered, report = arq.deliver(payload, channel)
        exact = bool(np.array_equal(recovered, payload))
        overhead = report.retransmission_overhead
        bounded = math.isfinite(overhead) and report.rounds <= arq.max_rounds
        all_exact &= exact
        all_bounded &= bounded
        points.append({
            "intensity": float(intensity),
            "frames_sent": int(report.frames_sent),
            "erased_frames": int(channel.erased_frames),
            "retransmission_overhead": _json_float(overhead),
            "bit_exact": exact,
        })
    return {
        "payload_bits": payload_bits,
        "points": points,
        "all_bit_exact": bool(all_exact),
        "all_bounded": bool(all_bounded),
        "passed": bool(all_exact and all_bounded),
    }


def run_stress(
    output="STRESS_PR8.json",
    smoke=False,
    seed=0,
    max_intensity=1.0,
    scenarios=None,
):
    """Run the stress suite; writes ``output`` and returns the report dict."""
    scenarios = list(scenarios) if scenarios else list(SCENARIOS)
    for scenario in scenarios:
        if scenario not in SCENARIOS:
            raise ValueError(
                f"unknown stress scenario {scenario!r}; choose from {SCENARIOS}"
            )
    fractions = (0.0, 0.5, 1.0) if smoke else (0.0, 0.25, 0.5, 0.75, 1.0)
    intensities = [f * float(max_intensity) for f in fractions]
    payload_length = 6000 if smoke else 20000

    report = {
        "meta": {
            "mode": "smoke" if smoke else "full",
            "seed": int(seed),
            "max_intensity": float(max_intensity),
            "scenarios": scenarios,
            "erasure_threshold": STRESS_ERASURE_THRESHOLD,
            "snr_gate_db": STRESS_SNR_GATE_DB,
            "payload_length": payload_length,
        },
        "noop_contracts": [
            _noop_contract(s, smoke, seed, payload_length) for s in scenarios
        ],
        "sweeps": [
            _sweep(s, intensities, smoke, seed, payload_length)
            for s in scenarios
        ],
        "sync_probes": [
            _sync_probe(s, float(max_intensity), smoke, seed, payload_length)
            for s in scenarios
            if s in SYNC_COUPLED
        ],
        "degradation": {
            "mac_backoff": _mac_backoff_probe(),
            "arq_jamming": _arq_jamming_probe(intensities, seed),
        },
    }

    checks = [c["passed"] for c in report["noop_contracts"]]
    checks += [
        s["monotone_goodput"] for s in report["sweeps"] if s["monotone_required"]
    ]
    checks += [p["attempts_bounded"] for p in report["sync_probes"]]
    checks.append(report["degradation"]["mac_backoff"]["passed"])
    checks.append(report["degradation"]["arq_jamming"]["passed"])
    report["passed"] = bool(all(checks))

    if output:
        parent = os.path.dirname(output)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(output, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
    return report
