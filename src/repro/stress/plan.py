"""Stress plans: named adversarial scenarios on top of the fault machinery.

A :class:`StressPlan` is a frozen :class:`~repro.faults.plan.FaultPlan`
that additionally carries a tuple of *stressors* — protocol-aware
attackers and congestion processes (see :mod:`repro.stress.stressors`)
that the pipeline applies at the same two hook points as the base carrier
injectors.  The plan inherits the whole fault contract:

* **intensity 0 is a bit-identical no-op** — every stressor at zero
  returns its input array object untouched and consumes no randomness any
  other stage sees;
* stressor randomness comes from dedicated streams
  (``plan.rng_for("stress:<name>")``), never the simulation's own spawns;
* placement draws are intensity-independent and coverage nests, so the
  degradation curves of :mod:`repro.stress.suite` are monotone by
  construction.

The pipeline never imports this module: :meth:`StressPlan.carrier_fault_set`
overrides the base factory, so :mod:`repro.core.system` builds a
:class:`StressFaultSet` through the plan without knowing stress exists.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.carrier import CarrierFaultSet
from repro.faults.plan import FaultPlan, _check_unit
from repro.obs import metrics as obs_metrics


class StressFaultSet(CarrierFaultSet):
    """Base carrier injectors plus a plan's scenario stressors.

    Stressors with ``hook == "ambient"`` run after the base ambient
    dropout (eNodeB-side: both the tag and the UE see them); stressors
    with ``hook == "backscatter"`` run after the base receive-chain
    injectors.  A stressor with ``needs_ambient = True`` (the tag-mob
    co-channel interferers) additionally receives the clean ambient the
    ghost tags would themselves reflect.
    """

    def __init__(self, plan):
        super().__init__(plan)
        self._stressors = tuple(plan.stressors)

    @property
    def active(self):
        return super().active or any(s.active for s in self._stressors)

    @property
    def wants_ambient(self):
        """True when an active stressor needs the tag-side ambient."""
        return any(
            getattr(s, "needs_ambient", False) and s.active
            for s in self._stressors
        )

    def _apply_stressors(self, samples, hook, ambient=None):
        for stressor in self._stressors:
            if stressor.hook != hook or not stressor.active:
                continue
            obs_metrics.counter_inc(f"stress.activations.{stressor.name}")
            rng = self._plan.rng_for(f"stress:{stressor.name}")
            if getattr(stressor, "needs_ambient", False):
                samples = stressor.apply(samples, rng, ambient=ambient)
            else:
                samples = stressor.apply(samples, rng)
        return samples

    def apply_ambient(self, unit):
        unit = super().apply_ambient(unit)
        return self._apply_stressors(unit, "ambient")

    def apply_backscatter(self, rx, ambient=None):
        rx = super().apply_backscatter(rx)
        return self._apply_stressors(rx, "backscatter", ambient=ambient)


@dataclass(frozen=True)
class StressPlan(FaultPlan):
    """One named adversarial scenario at one attack intensity."""

    #: Scenario name (see :data:`repro.stress.scenarios.SCENARIOS`).
    scenario: str = ""
    #: Attack intensity in [0, 1]; 0 is the bit-identical no-op.
    intensity: float = 0.0
    #: Stressor instances applied on top of the base carrier injectors.
    stressors: tuple = ()

    def __post_init__(self):
        _check_unit("intensity", self.intensity)

    @property
    def is_noop(self):
        return FaultPlan.is_noop.fget(self) and not any(
            s.active for s in self.stressors
        )

    def carrier_fault_set(self):
        return StressFaultSet(self)
