"""Protocol-aware stressors: the attack and congestion waveform injectors.

Every stressor follows the injector contract of
:mod:`repro.faults.carrier` — ``apply(samples, rng) -> ndarray``, the
input object returned untouched when inactive, a copy worked on when
active — plus two class attributes the :class:`~repro.stress.plan.StressFaultSet`
dispatches on:

* ``hook`` — ``"ambient"`` (applied at the eNodeB, so tag and UE both see
  it) or ``"backscatter"`` (applied to the UE's shifted-band receive
  chain, where the weak tag signal lives);
* ``needs_ambient`` — the stressor's ``apply`` takes an extra
  ``ambient=`` keyword carrying the clean tag-side ambient (only the
  tag-mob co-channel interferers need it).

Unlike the generic carrier injectors, these know the LTE frame geometry:
the signalling storm loads the PDCCH control region, the PSS jammer hits
exactly the sync symbols the tag's comparator harvests, and the reactive
jammer fires only during the data symbols tag packets occupy.

Monotonicity discipline (inherited from :mod:`repro.faults.plan`): all
placement randomness (burst centres, region permutations, tone
frequency/phase, ghost chip streams) is drawn in a fixed order with an
intensity-independent draw count, and intensity only grows a *nested*
affected-region set — via :func:`repro.traffic.models.nested_busy_mask`
or a permutation prefix — with amplitudes fixed and tone phases keyed to
the absolute sample index.  Already-affected samples are therefore
bit-identical across an intensity sweep, which is what lets
:mod:`repro.stress.suite` gate the degradation curves.
"""

from __future__ import annotations

import numpy as np

from repro.cells.interference import ghost_tag_offsets
from repro.lte.ofdm import frame_layout
from repro.lte.params import SLOTS_PER_FRAME
from repro.lte.pss import PSS_SLOTS, PSS_SYMBOL_IN_SLOT
from repro.lte.resource_grid import symbol_index
from repro.lte.sss import SSS_SYMBOL_IN_SLOT
from repro.traffic.models import nested_busy_mask


def _rms(samples):
    value = float(np.sqrt(np.mean(np.abs(samples) ** 2))) if len(samples) else 0.0
    return value if value > 0.0 else 1.0


def _symbol_span(params, frame, slot, first_symbol, last_symbol):
    """Sample range [lo, hi) of a run of symbols inside one frame."""
    layout = frame_layout(params)
    first = symbol_index(slot, first_symbol)
    last = symbol_index(slot, last_symbol)
    base = frame * params.samples_per_frame
    lo = base + int(layout.starts[first])
    hi = base + int(layout.starts[last] + layout.lengths[last])
    return lo, hi


def _tone(idx, amplitude, freq, phase):
    """A CW tone evaluated at absolute sample indices.

    Keying the argument to the absolute index keeps a region's samples
    identical when a higher intensity merely adds *more* regions.
    """
    return amplitude * np.exp(1j * (2.0 * np.pi * freq * idx + phase))


class _Stressor:
    """Shared intensity/active plumbing."""

    def __init__(self, intensity, params):
        if not 0.0 <= float(intensity) <= 1.0:
            raise ValueError(f"intensity must be in [0, 1], got {intensity!r}")
        self.intensity = float(intensity)
        self.params = params

    @property
    def active(self):
        return self.intensity > 0.0


class BurstyPdsch(_Stressor):
    """Congested-cell PDSCH: heavy-traffic bursts overload the downlink.

    Adds a delayed copy of the cell's own waveform (uncorrelated resource
    blocks — the scheduler serving other UEs) over nested busy windows.
    At full intensity the bursts cover ``BUSY_FRACTION_AT_FULL`` of the
    capture, drowning the idle half-frames tags harvest.
    """

    name = "bursty-pdsch"
    hook = "ambient"

    #: Capture fraction under burst load at intensity 1.
    BUSY_FRACTION_AT_FULL = 0.6
    #: Overload power relative to the carrier RMS (heavy-traffic cell).
    OVERLOAD_AMPLITUDE_REL = 2.0

    def __init__(self, intensity, params, n_bursts=6):
        super().__init__(intensity, params)
        self.n_bursts = max(1, int(n_bursts))

    def apply(self, samples, rng):
        if not self.active:
            return samples
        n = len(samples)
        # Placement draws first, in fixed order: the echo delay, then the
        # burst centres inside nested_busy_mask.
        delay = int(rng.integers(1, max(n, 2)))
        mask = nested_busy_mask(
            n, self.BUSY_FRACTION_AT_FULL * self.intensity, self.n_bursts, rng
        )
        idx = np.flatnonzero(mask)
        if not len(idx):
            return samples
        out = np.array(samples)
        load = np.roll(np.asarray(samples), delay)
        out[idx] += self.OVERLOAD_AMPLITUDE_REL * load[idx]
        return out


class SignallingStorm(_Stressor):
    """RACH-flood-shaped storm: the PDCCH control region saturates.

    A signalling storm (mass RACH, paging bursts) shows up downlink as
    sustained control-region load — symbols 0..2 of each subframe's first
    slot.  Intensity selects a nested (permutation-prefix) subset of the
    capture's subframes and loads exactly those control regions with a
    strong deterministic tone, eating the scheduling headroom tags ride
    while leaving PSS/SSS untouched (sync survives; capacity does not).
    """

    name = "signalling-storm"
    hook = "ambient"

    #: Control-region symbols per subframe (PDCCH span).
    CONTROL_SYMBOLS = 3
    #: Storm load amplitude relative to the carrier RMS.
    STORM_AMPLITUDE_REL = 3.0

    def apply(self, samples, rng):
        if not self.active:
            return samples
        n = len(samples)
        spf = self.params.samples_per_frame
        n_subframes = max(1, (n // spf) * 10)
        # Fixed-count placement draws: subframe order, tone freq, phase.
        order = rng.permutation(n_subframes)
        freq = float(rng.uniform(-0.45, 0.45))
        phase = float(rng.uniform(0.0, 2.0 * np.pi))
        amp = self.STORM_AMPLITUDE_REL * _rms(samples)
        k = int(np.ceil(self.intensity * n_subframes))
        out = np.array(samples)
        for subframe in order[:k]:
            frame, sub = divmod(int(subframe), 10)
            lo, hi = _symbol_span(
                self.params, frame, 2 * sub, 0, self.CONTROL_SYMBOLS - 1
            )
            idx = np.arange(lo, min(hi, n))
            out[idx] += _tone(idx, amp, freq, phase)
        return out


class SweepJammer(_Stressor):
    """A swept-frequency (chirp) jammer raking the backscatter band."""

    name = "sweep-jammer"
    hook = "backscatter"

    #: Capture fraction jammed at intensity 1.
    COVER_AT_FULL = 0.5
    #: Chirp amplitude relative to the receive-chain RMS.
    AMPLITUDE_REL = 4.0

    def __init__(self, intensity, params, n_bursts=3):
        super().__init__(intensity, params)
        self.n_bursts = max(1, int(n_bursts))

    def apply(self, samples, rng):
        if not self.active:
            return samples
        n = len(samples)
        # Fixed-order placement draws: start frequency, phase, sweep span,
        # then burst centres.
        f0 = float(rng.uniform(-0.45, 0.0))
        phase = float(rng.uniform(0.0, 2.0 * np.pi))
        span_cycles = float(rng.uniform(0.2, 0.45))
        mask = nested_busy_mask(
            n, self.COVER_AT_FULL * self.intensity, self.n_bursts, rng
        )
        idx = np.flatnonzero(mask)
        if not len(idx):
            return samples
        amp = self.AMPLITUDE_REL * _rms(samples)
        out = np.array(samples)
        # Linear chirp keyed to the absolute index: instantaneous frequency
        # walks f0 -> f0 + span over the capture, identically at every
        # intensity, so widened bursts only add newly-jammed samples.
        arg = 2.0 * np.pi * (f0 * idx + 0.5 * span_cycles * idx**2 / max(n, 1))
        out[idx] += amp * np.exp(1j * (arg + phase))
        return out


class ReactiveJammer(_Stressor):
    """Protocol-aware reactive jammer: fires only on tag data symbols.

    A reactive jammer senses the tag's modulated reflection and keys up
    for exactly the data-symbol spans of each slot (symbols 1..6 — the
    windows :mod:`repro.bsrx` slices bits from), skipping the sync slots
    so it stays hard to detect from the sync side.  Intensity selects a
    nested permutation-prefix subset of the capture's per-slot data spans.
    """

    name = "reactive-jammer"
    hook = "backscatter"

    #: Jammer amplitude relative to the receive-chain RMS.
    AMPLITUDE_REL = 4.0

    def apply(self, samples, rng):
        if not self.active:
            return samples
        n = len(samples)
        spf = self.params.samples_per_frame
        n_frames = max(1, n // spf)
        regions = [
            (frame, slot)
            for frame in range(n_frames)
            for slot in range(SLOTS_PER_FRAME)
            if slot not in PSS_SLOTS
        ]
        # Fixed-count placement draws: region order, tone freq, phase.
        order = rng.permutation(len(regions))
        freq = float(rng.uniform(-0.45, 0.45))
        phase = float(rng.uniform(0.0, 2.0 * np.pi))
        amp = self.AMPLITUDE_REL * _rms(samples)
        k = int(np.ceil(self.intensity * len(regions)))
        out = np.array(samples)
        for region in order[:k]:
            frame, slot = regions[int(region)]
            lo, hi = _symbol_span(self.params, frame, slot, 1, 6)
            idx = np.arange(lo, min(hi, n))
            out[idx] += _tone(idx, amp, freq, phase)
        return out


class PssJammer(_Stressor):
    """Sync-targeted jammer: buries the PSS/SSS boost the tag detects.

    The nastiest protocol-aware attack for a passive tag: jam only the
    sync symbols (SSS + PSS, symbols 5..6 of slots 0 and 10) of a nested
    subset of half-frames, on the *ambient* side so the tag's envelope
    detector sees a raised floor exactly where it expects the boost.
    Per arXiv 2506.01743, sync loss is the first failure mode under
    hostile ambients — this stressor produces it on demand.
    """

    name = "pss-jammer"
    hook = "ambient"

    #: Jammer amplitude relative to the carrier RMS (must rival the
    #: paper's ~2 dB PSS boost to matter).
    AMPLITUDE_REL = 3.0

    def apply(self, samples, rng):
        if not self.active:
            return samples
        n = len(samples)
        half = self.params.samples_per_frame // 2
        n_half = max(1, n // half)
        order = rng.permutation(n_half)
        freq = float(rng.uniform(-0.45, 0.45))
        phase = float(rng.uniform(0.0, 2.0 * np.pi))
        amp = self.AMPLITUDE_REL * _rms(samples)
        k = int(np.ceil(self.intensity * n_half))
        out = np.array(samples)
        for h in order[:k]:
            frame, parity = divmod(int(h), 2)
            slot = PSS_SLOTS[parity]
            lo, hi = _symbol_span(
                self.params, frame, slot, SSS_SYMBOL_IN_SLOT, PSS_SYMBOL_IN_SLOT
            )
            idx = np.arange(lo, min(hi, n))
            out[idx] += _tone(idx, amp, freq, phase)
        return out


class TagMob(_Stressor):
    """Intra-cell tag-to-tag interference: a mob of unscheduled ghosts.

    Each ghost tag reflects the same ambient carrier with its own chip
    stream at its own deterministic timing offset
    (:func:`repro.cells.interference.ghost_tag_offsets`) — co-channel
    interference in the shifted band that no filter separates.  Ghost
    ``g`` transmits only in half-frames with ``h % n_ghosts == g``, so
    the ghosts' footprints are disjoint and intensity (which activates
    ``ceil(intensity * n_ghosts)`` ghosts, a nested set) grows the
    affected sample set without touching already-interfered samples.
    Sync symbols are left clean: real tags keep quiet during PSS/SSS too.
    """

    name = "tag-mob"
    hook = "backscatter"
    needs_ambient = True

    #: Ghost reflection amplitude relative to the receive-chain RMS
    #: (comparable-power co-channel tags at similar range).
    AMPLITUDE_REL = 1.0

    def __init__(self, intensity, params, n_ghosts=4):
        super().__init__(intensity, params)
        self.n_ghosts = max(1, int(n_ghosts))

    def _sync_clean_mask(self, n):
        """True where ghosts may transmit (everything but sync symbols)."""
        spf = self.params.samples_per_frame
        mask = np.ones(n, dtype=bool)
        for frame in range(max(1, n // spf)):
            for slot in PSS_SLOTS:
                lo, hi = _symbol_span(
                    self.params, frame, slot,
                    SSS_SYMBOL_IN_SLOT, PSS_SYMBOL_IN_SLOT,
                )
                mask[lo : min(hi, n)] = False
        return mask

    def apply(self, samples, rng, ambient=None):
        if not self.active:
            return samples
        n = len(samples)
        half = self.params.samples_per_frame // 2
        # Ghost chips are drawn for EVERY ghost regardless of intensity
        # (fixed draw count); one chip per half-symbol keeps the streams
        # spectrally plausible without tracking the tag's exact rate.
        chip_len = max(1, self.params.fft_size // 2)
        n_chips = n // chip_len + 1
        chips_all = (
            rng.integers(0, 2, size=(self.n_ghosts, n_chips)) * 2 - 1
        ).astype(np.int8)
        base = np.asarray(ambient if ambient is not None else samples)
        m = min(n, len(base))
        # Normalise the reflected carrier so each ghost lands at
        # AMPLITUDE_REL x the receive-chain RMS regardless of the tag-side
        # path loss baked into the ambient.
        base = base[:m] / _rms(base[:m])
        offsets = ghost_tag_offsets(
            self.n_ghosts, self.params.samples_per_frame
        )
        clean = self._sync_clean_mask(n)
        amp = self.AMPLITUDE_REL * _rms(samples)
        k = int(np.ceil(self.intensity * self.n_ghosts))
        out = np.array(samples)
        positions = np.arange(m)
        half_frame_of = positions // half
        for g in range(k):
            stream = np.repeat(chips_all[g], chip_len)[:m]
            owned = (half_frame_of % self.n_ghosts) == g
            idx = np.flatnonzero(owned & clean[:m])
            if not len(idx):
                continue
            ghost = np.roll(base, offsets[g])
            out[idx] += amp * stream[idx] * ghost[idx]
        return out
