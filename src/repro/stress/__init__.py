"""Adversarial & congested-cell scenarios with graceful tag degradation.

The stress layer composes :mod:`repro.traffic` occupancy shapes, the
:mod:`repro.faults` injection machinery and the :mod:`repro.cells`
interference path into named attack scenarios (see
:mod:`repro.stress.scenarios`), pairs them with the pipeline's graceful
degradation hooks (adaptive re-sync, SNR-gated erasure escalation, MAC
congestion backoff), and sweeps them into gated degradation curves
(:mod:`repro.stress.suite`, ``repro stress``).
"""

from repro.stress.plan import StressFaultSet, StressPlan
from repro.stress.scenarios import SCENARIOS, SYNC_COUPLED, make_scenario_plan
from repro.stress.stressors import (
    BurstyPdsch,
    PssJammer,
    ReactiveJammer,
    SignallingStorm,
    SweepJammer,
    TagMob,
)
from repro.stress.suite import run_stress

__all__ = [
    "BurstyPdsch",
    "PssJammer",
    "ReactiveJammer",
    "SCENARIOS",
    "SYNC_COUPLED",
    "SignallingStorm",
    "StressFaultSet",
    "StressPlan",
    "SweepJammer",
    "TagMob",
    "make_scenario_plan",
    "run_stress",
]
