"""The named scenario registry: one stressor recipe per adversary.

Each scenario maps an attack intensity in [0, 1] to a
:class:`~repro.stress.plan.StressPlan` for one adversary/congestion
model.  Scenarios are deliberately single-stressor — the suite's
degradation curves then attribute every lost bit to one mechanism — but
:func:`make_scenario_plan` accepts any registered name and
:class:`~repro.stress.plan.StressPlan` composes, so tests and campaigns
can stack stressors when they want a combined storm.
"""

from __future__ import annotations

from repro.stress.plan import StressPlan
from repro.stress.stressors import (
    BurstyPdsch,
    PssJammer,
    ReactiveJammer,
    SignallingStorm,
    SweepJammer,
    TagMob,
)

_SCENARIO_STRESSORS = {
    "bursty-pdsch": BurstyPdsch,
    "signalling-storm": SignallingStorm,
    "sweep-jammer": SweepJammer,
    "reactive-jammer": ReactiveJammer,
    "pss-jammer": PssJammer,
    "tag-mob": TagMob,
}

#: All scenario names, in canonical sweep order.
SCENARIOS = tuple(_SCENARIO_STRESSORS)

#: Scenarios that attack the sync path itself: their goodput collapse is
#: threshold-y (the comparator either fires or it doesn't under a raised
#: envelope floor), so — like ``drift`` in the chaos suite — the circuit
#: sync probe reports them but the model-sync sweep is what gets gated.
SYNC_COUPLED = frozenset({"pss-jammer", "signalling-storm"})


def make_scenario_plan(scenario, intensity, params, seed=0):
    """Build the :class:`StressPlan` for one scenario at one intensity."""
    try:
        stressor_cls = _SCENARIO_STRESSORS[scenario]
    except KeyError:
        raise ValueError(
            f"unknown stress scenario {scenario!r}; choose from {SCENARIOS}"
        ) from None
    stressor = stressor_cls(float(intensity), params)
    return StressPlan(
        seed=int(seed),
        scenario=str(scenario),
        intensity=float(intensity),
        stressors=(stressor,),
    )
