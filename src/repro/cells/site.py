"""Cell sites: the eNodeBs of a multi-cell deployment.

A :class:`CellSite` pins down one carrier: its physical cell identity
(which fixes the PSS root and the CRS/scrambling sequences), where it
stands, how loud it transmits, and how much traffic it carries.  The
identity split follows the standard: ``N_ID = 3 * N_ID^(1) + N_ID^(2)``,
so adjacent cells with consecutive ids automatically get distinct PSS
roots — the property real network planners engineer deliberately and the
tag's cell search leans on.

Positions are in feet, matching the paper's distance reporting and the
rest of the channel layer (:mod:`repro.channel.pathloss` converts).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.config import SystemConfig
from repro.lte.frame import CellConfig


@dataclass(frozen=True)
class CellSite:
    """One eNodeB of a multi-cell topology."""

    cell_id: int
    x_ft: float
    y_ft: float
    bandwidth_mhz: float = 1.4
    tx_power_dbm: float = 10.0
    n_frames: int = 4
    #: Per-cell traffic model: fraction of subframes carrying PDSCH data
    #: (1.0 = full buffer, the heavy-traffic limit) and the data-channel
    #: modulation — both flow into the cell's :class:`CellConfig`.
    pdsch_load: float = 1.0
    modulation: str = "qpsk"

    def __post_init__(self):
        if not 0 <= int(self.cell_id) <= 503:
            raise ValueError(
                f"cell_id must be a physical cell identity in [0, 503], "
                f"got {self.cell_id}"
            )
        if not (math.isfinite(self.x_ft) and math.isfinite(self.y_ft)):
            raise ValueError(
                f"cell {self.cell_id}: position ({self.x_ft}, {self.y_ft}) ft "
                "must be finite"
            )
        if self.n_frames < 1:
            raise ValueError(
                f"cell {self.cell_id}: n_frames must be >= 1, got {self.n_frames}"
            )
        if not 0.0 <= float(self.pdsch_load) <= 1.0:
            raise ValueError(
                f"cell {self.cell_id}: pdsch_load must be in [0, 1], "
                f"got {self.pdsch_load}"
            )

    # -- identity ---------------------------------------------------------------

    @property
    def n_id_1(self):
        """SSS group identity N_ID^(1)."""
        return int(self.cell_id) // 3

    @property
    def n_id_2(self):
        """PSS root identity N_ID^(2) — what the tag's search keys on."""
        return int(self.cell_id) % 3

    def cell_config(self):
        """The :class:`CellConfig` this site transmits."""
        return CellConfig(
            n_id_1=self.n_id_1,
            n_id_2=self.n_id_2,
            modulation=self.modulation,
            pdsch_load=self.pdsch_load,
        )

    # -- geometry ---------------------------------------------------------------

    def distance_ft(self, x_ft, y_ft):
        """Euclidean distance from this site to a point, in feet."""
        return math.hypot(self.x_ft - float(x_ft), self.y_ft - float(y_ft))

    # -- derived configs --------------------------------------------------------

    def ambient_config(self, venue="smart_home"):
        """A :class:`SystemConfig` sufficient for the ambient stage.

        Only ``(bandwidth, cell, n_frames)`` feed the eNodeB capture, so
        the geometry fields keep their defaults; the per-tag stage builds
        its own config with real distances.
        """
        return SystemConfig(
            bandwidth_mhz=self.bandwidth_mhz,
            venue=venue,
            cell=self.cell_config(),
            tx_power_dbm=self.tx_power_dbm,
            n_frames=self.n_frames,
        )
