"""Inter-cell interference: sum neighbour downlinks into the serving capture.

The tag rides its serving cell, but every co-channel neighbour's downlink
arrives too, scaled by its own pathloss.  This module builds the combined
ambient the per-tag stage consumes: the *unit* waveform (what the tag's
envelope circuit and the UE's antennas see) is the serving cell's
unit-power capture plus each neighbour's capture at its relative
amplitude, while the *reference* (what genie-mode demodulation divides
by) stays the clean serving capture — interference therefore degrades
sync and demodulation exactly as it would on air.

Neighbour captures are rolled by a deterministic per-cell timing offset:
real eNodeBs are not frame-synchronous, so a neighbour's PSS must not sit
on top of the serving cell's.  The offset is a pure function of the cell
id, keeping every run bit-identical at any worker count.

:class:`CellAmbient` is the picklable recipe: it carries the serving
ambient plus ``(neighbour, amplitude, offset)`` entries — each either an
in-memory :class:`~repro.core.system.AmbientStage` (serial) or a
memory-mapped :class:`~repro.fleet.ambient.AmbientHandle` (workers) —
and superposes them on :meth:`CellAmbient.load` in ascending cell-id
order, so serial and pooled executions perform the identical float ops.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.system import AmbientStage
from repro.lte.transmitter import LteCapture
from repro.obs.trace import span
from repro.utils.units import db_to_linear

#: Multiplier scattering per-cell timing offsets across the frame (prime,
#: so consecutive cell ids land far apart).
_OFFSET_STRIDE = 7919


def timing_offset_samples(cell_id, samples_per_frame):
    """Deterministic frame-timing offset of a cell, in samples."""
    return (int(cell_id) * _OFFSET_STRIDE) % int(samples_per_frame)


#: Stride for intra-cell ghost-tag offsets (a different prime than the
#: inter-cell one, so ghost tags never alias onto neighbour-cell timing).
_GHOST_STRIDE = 5077


def ghost_tag_offsets(n_ghosts, samples_per_frame):
    """Deterministic sample offsets for ``n_ghosts`` co-channel ghost tags.

    Intra-cell tag-to-tag interference (the :mod:`repro.stress` tag-mob
    scenario) places each ghost's chip stream at a distinct, reproducible
    offset inside the frame; the 1-based stride keeps ghost 0 off the
    real tag's own timing.
    """
    period = int(samples_per_frame)
    return [((g + 1) * _GHOST_STRIDE) % period for g in range(int(n_ghosts))]


def relative_amplitude_db(topology, serving_site, neighbour_site, x_ft, y_ft):
    """Neighbour downlink power at a point, relative to the serving cell."""
    return topology.rx_dbm_at(neighbour_site, x_ft, y_ft) - topology.rx_dbm_at(
        serving_site, x_ft, y_ft
    )


@dataclass(frozen=True)
class NeighbourRecipe:
    """One interfering cell's contribution to a tag's combined ambient."""

    cell_id: int
    #: AmbientStage (serial) or AmbientHandle (worker processes).
    ambient: object
    #: Linear amplitude relative to the serving cell's unit waveform.
    amplitude: float
    offset_samples: int


def neighbour_recipes(
    topology, serving_site, x_ft, y_ft, ambients, max_interferers=None
):
    """Build the interferer list for a tag at ``(x_ft, y_ft)``.

    ``ambients`` maps cell id -> stage or handle (from
    :meth:`~repro.cells.topology.Topology.prepare_ambients`).  With
    ``max_interferers`` only the strongest K neighbours (ties broken by
    cell id) are kept — the rest are below the noise anyway in large
    layouts.  The returned list is sorted by cell id, which fixes the
    superposition order.
    """
    entries = []
    for site in topology.neighbours_of(serving_site.cell_id):
        rel_db = relative_amplitude_db(topology, serving_site, site, x_ft, y_ft)
        entries.append((site.cell_id, float(np.sqrt(db_to_linear(rel_db)))))
    if max_interferers is not None:
        entries.sort(key=lambda entry: (-entry[1], entry[0]))
        entries = entries[: max(0, int(max_interferers))]
    params = topology.sites[0].ambient_config(venue=topology.venue).params
    recipes = [
        NeighbourRecipe(
            cell_id=cell_id,
            ambient=ambients[cell_id],
            amplitude=amplitude,
            offset_samples=timing_offset_samples(cell_id, params.samples_per_frame),
        )
        for cell_id, amplitude in sorted(entries)
    ]
    return recipes


@dataclass
class CellAmbient:
    """Picklable combined-ambient recipe for one tag on one serving cell."""

    serving: object
    neighbours: list = field(default_factory=list)

    @staticmethod
    def _stage(ambient):
        return ambient.load() if hasattr(ambient, "load") else ambient

    def load(self):
        """Superpose the neighbourhood; returns an :class:`AmbientStage`.

        The returned stage's ``unit`` is the interfered waveform; its
        ``capture`` keeps the *clean* serving samples so genie references
        and ground truth stay interference-free.
        """
        serving = self._stage(self.serving)
        if not self.neighbours:
            return serving
        with span("cells.interference") as sp:
            combined = np.array(serving.unit, dtype=complex, copy=True)
            for recipe in sorted(self.neighbours, key=lambda r: r.cell_id):
                stage = self._stage(recipe.ambient)
                if len(stage.unit) != len(combined):
                    raise ValueError(
                        f"cell {recipe.cell_id} capture has {len(stage.unit)} "
                        f"samples but the serving capture has {len(combined)}; "
                        "superposition requires equal-length captures "
                        "(same bandwidth and n_frames across the topology)"
                    )
                combined += recipe.amplitude * np.roll(
                    stage.unit, recipe.offset_samples
                )
            sp.set(n_neighbours=len(self.neighbours))
        capture = LteCapture(
            params=serving.capture.params,
            cell=serving.capture.cell,
            samples=serving.unit,
            frames=serving.capture.frames,
        )
        return AmbientStage(capture=capture, unit=combined)
