"""Network layouts: where the cells stand and what each emits.

A :class:`Topology` is an ordered set of :class:`~repro.cells.site.CellSite`\\ s
sharing one venue and carrier.  Layout constructors cover the common
planning shapes — a hexagonal cluster (the classic 7-cell reuse pattern),
a rectangular grid, or an explicit site list — and the class provides the
deterministic geometry/ radio queries everything downstream uses: received
power and SNR of any cell at any point, neighbour enumeration, and the
per-cell ambient captures generated once through
:class:`~repro.fleet.ambient.AmbientCache` (keyed on cell ID, so two cells
with otherwise identical parameters never collide).

Superposing cells requires equal-length captures, so a topology enforces
uniform bandwidth and frame count across its sites at construction time
with an error naming the offender.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from repro.channel.link import DEFAULT_CARRIER_HZ, LinkBudget
from repro.cells.site import CellSite
from repro.obs.trace import span
from repro.utils.rng import stream_rng

#: Hexagonal neighbour directions (unit inter-site steps).
_HEX_ANGLES_DEG = (0, 60, 120, 180, 240, 300)


def ambient_seed(seed, cell_id):
    """Deterministic per-cell transmitter seed.

    Derived through a keyed stream so every cell carries independent
    payload traffic while the whole topology stays reproducible from one
    run seed — regardless of generation order or sharding.
    """
    return int(stream_rng(seed, "cells.ambient", int(cell_id)).integers(0, 2**31 - 1))


@dataclass
class Topology:
    """An ordered multi-cell layout over one venue."""

    sites: list = field(default_factory=list)
    venue: str = "smart_home"
    carrier_hz: float = DEFAULT_CARRIER_HZ

    def __post_init__(self):
        if not self.sites:
            raise ValueError("a topology needs at least one cell site")
        seen_ids = {}
        seen_pos = {}
        for site in self.sites:
            if site.cell_id in seen_ids:
                raise ValueError(
                    f"duplicate cell_id {site.cell_id}: two sites share one "
                    "physical cell identity; give every site a distinct id"
                )
            seen_ids[site.cell_id] = site
            pos = (site.x_ft, site.y_ft)
            if pos in seen_pos:
                raise ValueError(
                    f"cells {seen_pos[pos]} and {site.cell_id} are co-located "
                    f"at {pos} ft; move one of them"
                )
            seen_pos[pos] = site.cell_id
        first = self.sites[0]
        for site in self.sites[1:]:
            if site.bandwidth_mhz != first.bandwidth_mhz:
                raise ValueError(
                    f"cell {site.cell_id} uses {site.bandwidth_mhz} MHz but "
                    f"cell {first.cell_id} uses {first.bandwidth_mhz} MHz; "
                    "superposition requires one bandwidth per topology"
                )
            if site.n_frames != first.n_frames:
                raise ValueError(
                    f"cell {site.cell_id} transmits {site.n_frames} frame(s) "
                    f"but cell {first.cell_id} transmits {first.n_frames}; "
                    "captures must be equal length to superpose"
                )
        self._by_id = seen_ids

    # -- constructors -----------------------------------------------------------

    @classmethod
    def hex_cluster(cls, inter_site_ft=300.0, rings=1, start_cell_id=0, **site_kwargs):
        """The classic hexagonal cluster: a centre cell plus ``rings`` rings.

        ``rings=1`` gives the 7-cell pattern.  Cell ids are assigned
        consecutively from ``start_cell_id`` (centre first, then ring by
        ring), so neighbouring cells automatically rotate through the
        three PSS roots.
        """
        if inter_site_ft <= 0:
            raise ValueError(f"inter_site_ft must be positive, got {inter_site_ft}")
        if rings < 0:
            raise ValueError(f"rings must be >= 0, got {rings}")
        positions = [(0.0, 0.0)]
        for ring in range(1, int(rings) + 1):
            for angle_deg in _HEX_ANGLES_DEG:
                angle = math.radians(angle_deg)
                corner = (
                    ring * inter_site_ft * math.cos(angle),
                    ring * inter_site_ft * math.sin(angle),
                )
                # Walk the ring edge from this corner towards the next one.
                next_angle = math.radians(angle_deg + 120)
                for step in range(ring):
                    positions.append(
                        (
                            corner[0] + step * inter_site_ft * math.cos(next_angle),
                            corner[1] + step * inter_site_ft * math.sin(next_angle),
                        )
                    )
        topology_kwargs = {
            key: site_kwargs.pop(key)
            for key in ("venue", "carrier_hz")
            if key in site_kwargs
        }
        sites = [
            CellSite(
                cell_id=start_cell_id + index,
                x_ft=round(x, 9),
                y_ft=round(y, 9),
                **site_kwargs,
            )
            for index, (x, y) in enumerate(positions)
        ]
        return cls(sites=sites, **topology_kwargs)

    @classmethod
    def grid(cls, rows, cols, spacing_ft=300.0, start_cell_id=0, **site_kwargs):
        """A rows x cols rectangular street grid of sites."""
        if rows < 1 or cols < 1:
            raise ValueError(f"grid needs rows, cols >= 1, got {rows}x{cols}")
        if spacing_ft <= 0:
            raise ValueError(f"spacing_ft must be positive, got {spacing_ft}")
        topology_kwargs = {
            key: site_kwargs.pop(key)
            for key in ("venue", "carrier_hz")
            if key in site_kwargs
        }
        sites = []
        for row in range(int(rows)):
            for col in range(int(cols)):
                sites.append(
                    CellSite(
                        cell_id=start_cell_id + row * int(cols) + col,
                        x_ft=col * spacing_ft,
                        y_ft=row * spacing_ft,
                        **site_kwargs,
                    )
                )
        return cls(sites=sites, **topology_kwargs)

    @classmethod
    def explicit(cls, sites, **kwargs):
        """A topology over a hand-placed site list."""
        return cls(sites=list(sites), **kwargs)

    # -- views ------------------------------------------------------------------

    @property
    def n_cells(self):
        return len(self.sites)

    @property
    def cell_ids(self):
        return [site.cell_id for site in self.sites]

    @property
    def bandwidth_mhz(self):
        return self.sites[0].bandwidth_mhz

    @property
    def n_frames(self):
        return self.sites[0].n_frames

    def site(self, cell_id):
        try:
            return self._by_id[cell_id]
        except KeyError:
            raise KeyError(
                f"no cell {cell_id} in this topology; cells: {self.cell_ids}"
            ) from None

    def neighbours_of(self, cell_id):
        """Every other site, in ascending cell-id order (summation order)."""
        self.site(cell_id)
        return sorted(
            (site for site in self.sites if site.cell_id != cell_id),
            key=lambda site: site.cell_id,
        )

    def restrict(self, cell_ids):
        """A sub-topology keeping only ``cell_ids`` (order preserved)."""
        keep = set(cell_ids)
        missing = keep - set(self.cell_ids)
        if missing:
            raise KeyError(
                f"cannot restrict to unknown cell(s) {sorted(missing)}; "
                f"cells: {self.cell_ids}"
            )
        return replace(
            self, sites=[site for site in self.sites if site.cell_id in keep]
        )

    # -- radio queries ----------------------------------------------------------

    def budget_for(self, site):
        """The per-site :class:`LinkBudget` (venue and carrier are shared)."""
        return LinkBudget(
            tx_power_dbm=site.tx_power_dbm,
            carrier_hz=self.carrier_hz,
            venue=self.venue,
        )

    def rx_dbm_at(self, site, x_ft, y_ft):
        """Mean downlink power of ``site`` at a point (deterministic)."""
        return self.budget_for(site).direct_rx_dbm(site.distance_ft(x_ft, y_ft))

    def snr_db_at(self, site, x_ft, y_ft):
        """Post-pathloss downlink SNR of ``site`` at a point."""
        bandwidth_hz = site.bandwidth_mhz * 1e6
        return self.budget_for(site).direct_snr_db(
            site.distance_ft(x_ft, y_ft), bandwidth_hz
        )

    # -- ambient captures -------------------------------------------------------

    def prepare_ambients(self, cache, seed, handles=False, include_frames=False):
        """One cached ambient per cell: ``{cell_id: stage-or-handle}``.

        Captures are generated (or reused) through ``cache`` in ascending
        cell-id order with per-cell transmitter seeds from
        :func:`ambient_seed`; ``handles=True`` vends picklable
        memory-mapped :class:`~repro.fleet.ambient.AmbientHandle`\\ s for
        worker processes instead of in-memory stages.
        """
        ambients = {}
        with span("cells.ambient") as sp:
            for site in sorted(self.sites, key=lambda s: s.cell_id):
                config = site.ambient_config(venue=self.venue)
                cell_seed = ambient_seed(seed, site.cell_id)
                if handles:
                    ambients[site.cell_id] = cache.handle(
                        config, cell_seed, include_frames=include_frames
                    )
                else:
                    ambients[site.cell_id] = cache.get(config, cell_seed)
            sp.set(n_cells=self.n_cells, transmit_calls=cache.transmit_calls)
        return ambients
