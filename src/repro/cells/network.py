"""City-scale network runs: many cells, many tags, one deterministic answer.

This module scales the single-cell fleet machinery to a multi-cell
topology.  The moving parts:

* :class:`NetworkTag` — a tag at an absolute venue position (feet), with
  an optional waypoint route for mobility;
* :class:`NetworkDeployment` — the tag population plus the per-tag
  simulation knobs shared network-wide;
* :class:`NetworkRunner` — the orchestrator.  It prepares one cached
  ambient capture per cell (:meth:`Topology.prepare_ambients`), attaches
  every tag (analytic ranking by default, IQ-verified cell search with
  ``attach_mode="search"``), schedules each cell's MAC independently,
  and fans out one :class:`CohortTask` per *(cell, tag-cohort)* through
  :class:`~repro.fleet.engine.ParallelRunEngine` — the campaign-shardable
  unit of work.

Determinism is inherited, not re-argued: per-tag seeds and per-cell MAC
seeds come from :func:`repro.utils.rng.stream_rng` keyed on stable names,
so they are independent of cohort composition, worker count, and
sharding; each tag's interference superposition is built in fixed
cell-id order; ambient spills round-trip exact bytes.  A 7-cell run is
bit-identical at any ``--workers`` value.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
import math
import time

import numpy as np

from repro.cells.attach import attach as analytic_attach
from repro.cells.attach import search_attach
from repro.cells.handover import HandoverPolicy, simulate_handover
from repro.cells.interference import CellAmbient, neighbour_recipes
from repro.core.config import SystemConfig
from repro.fleet.ambient import AmbientCache
from repro.fleet.engine import ParallelRunEngine, TaskFailure
from repro.fleet.report import FleetReport, TagResult, capture_seconds
from repro.bsrx.streaming import DEFAULT_CHUNK_HALF_FRAMES
from repro.fleet.runner import TagTask, _simulate_tag, _simulate_tags_batched
from repro.fleet.scheduler import FleetScheduler, make_scheme
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.utils.rng import stream_rng

#: eNodeB-to-tag distances below this (ft) are clamped — a tag cannot sit
#: inside the transmit antenna, and the pathloss model floors there anyway.
_MIN_HOP_FT = 0.1


@dataclass(frozen=True)
class NetworkTag:
    """One tag at an absolute position in the venue plane."""

    name: str
    x_ft: float
    y_ft: float
    tag_to_ue_ft: float = 5.0
    weight: int = 1
    #: Mobility route: ``((x, y), ...)`` waypoints, one per equal time
    #: slice.  ``None`` means the tag is static.  A mobile tag's IQ-level
    #: run happens at its first waypoint; handovers along the route charge
    #: re-sync time against its goodput.
    waypoints: tuple = None

    def __post_init__(self):
        if not (math.isfinite(float(self.x_ft)) and math.isfinite(float(self.y_ft))):
            raise ValueError(
                f"tag {self.name!r}: position ({self.x_ft}, {self.y_ft}) ft "
                "must be finite"
            )
        if self.tag_to_ue_ft <= 0:
            raise ValueError(
                f"tag {self.name!r}: tag_to_ue_ft must be positive, got "
                f"{self.tag_to_ue_ft}; the UE cannot share the tag's antenna"
            )
        if self.weight <= 0:
            raise ValueError(
                f"tag {self.name!r}: scheduling weight must be positive, "
                f"got {self.weight}"
            )
        if self.waypoints is not None:
            points = tuple((float(x), float(y)) for x, y in self.waypoints)
            if not points:
                raise ValueError(
                    f"tag {self.name!r}: waypoints=() means no position at "
                    "all; use waypoints=None for a static tag"
                )
            for x, y in points:
                if not (math.isfinite(x) and math.isfinite(y)):
                    raise ValueError(
                        f"tag {self.name!r}: waypoint ({x}, {y}) ft must be "
                        "finite"
                    )
            object.__setattr__(self, "waypoints", points)

    @property
    def mobile(self):
        return self.waypoints is not None and len(self.waypoints) > 1

    @property
    def position(self):
        """Where the tag's IQ-level simulation runs."""
        if self.waypoints:
            return self.waypoints[0]
        return (float(self.x_ft), float(self.y_ft))


@dataclass
class NetworkDeployment:
    """The tag population of a multi-cell network plus shared sim knobs."""

    tags: list = field(default_factory=list)
    reference_mode: str = "genie"
    sync_mode: str = "model"
    add_noise: bool = True
    multipath: bool = True
    sync_error_samples: int = None

    def __post_init__(self):
        if not self.tags:
            raise ValueError("a network deployment needs at least one tag")
        names = {}
        positions = {}
        for tag in self.tags:
            if tag.name in names:
                raise ValueError(
                    f"duplicate tag name {tag.name!r}; every tag needs a "
                    "distinct name"
                )
            names[tag.name] = tag
            pos = tag.position
            if pos in positions:
                raise ValueError(
                    f"tags {positions[pos]!r} and {tag.name!r} are co-located "
                    f"at {pos} ft; two tags cannot share one antenna position"
                )
            positions[pos] = tag.name

    @classmethod
    def scatter(cls, n_tags, topology, seed=0, margin_ft=50.0, **kwargs):
        """Tags scattered uniformly over the topology's bounding box.

        Positions come from a keyed stream (:func:`stream_rng`), so the
        same ``(n_tags, topology, seed)`` always produces the same
        deployment regardless of call order.
        """
        if n_tags < 1:
            raise ValueError(f"need at least one tag, got {n_tags}")
        xs = [site.x_ft for site in topology.sites]
        ys = [site.y_ft for site in topology.sites]
        rng = stream_rng(seed, "cells.scatter", int(n_tags))
        tags = [
            NetworkTag(
                name=f"tag{i:03d}",
                x_ft=float(rng.uniform(min(xs) - margin_ft, max(xs) + margin_ft)),
                y_ft=float(rng.uniform(min(ys) - margin_ft, max(ys) + margin_ft)),
            )
            for i in range(int(n_tags))
        ]
        return cls(tags=tags, **kwargs)

    @property
    def n_tags(self):
        return len(self.tags)

    @property
    def names(self):
        return [tag.name for tag in self.tags]

    def with_tags(self, tags):
        return replace(self, tags=list(tags))

    def config_for(self, topology, site, tag):
        """The per-tag :class:`SystemConfig` on its serving cell."""
        x, y = tag.position
        return SystemConfig(
            bandwidth_mhz=site.bandwidth_mhz,
            venue=topology.venue,
            enb_to_tag_ft=max(site.distance_ft(x, y), _MIN_HOP_FT),
            tag_to_ue_ft=tag.tag_to_ue_ft,
            tx_power_dbm=site.tx_power_dbm,
            carrier_hz=topology.carrier_hz,
            cell=site.cell_config(),
            n_frames=site.n_frames,
            reference_mode=self.reference_mode,
            sync_mode=self.sync_mode,
            sync_error_samples=self.sync_error_samples,
            multipath=self.multipath,
            add_noise=self.add_noise,
        )


@dataclass
class CohortTask:
    """One *(cell, tag-cohort)* unit of work — picklable, self-contained."""

    cell_id: int
    tasks: list = field(default_factory=list)


def _simulate_cohort(cohort):
    """Run every tag of one cell's cohort serially inside one worker.

    Returns ``(elapsed, [TagResult, ...])`` in cohort order.  Each member
    task is the same pure :func:`repro.fleet.runner._simulate_tag` payload
    a single-cell fleet would run, so per-tag results are bit-identical
    whether the cohort executes in the parent or in any worker.
    """
    start = time.perf_counter()
    results = [_simulate_tag(task)[1] for task in cohort.tasks]
    return time.perf_counter() - start, results


def tag_seed(seed, name):
    """Per-tag simulation seed, independent of cohort composition."""
    return int(stream_rng(seed, "cells.tag", name).integers(0, 2**63 - 1))


def mac_seed(seed, cell_id):
    """Per-cell MAC scheduling seed, independent of attach outcomes."""
    return int(
        stream_rng(seed, "cells.mac", int(cell_id)).integers(0, 2**63 - 1)
    )


@dataclass
class CellReport:
    """One cell's slice of a network run."""

    cell_id: int
    fleet: FleetReport


@dataclass
class NetworkReport:
    """Everything one :class:`NetworkRunner` run produced."""

    n_cells: int
    n_tags: int
    scheme: str
    #: Cell id -> :class:`FleetReport` (cells with no attached tags absent).
    cells: dict = field(default_factory=dict)
    #: Tag name -> :class:`~repro.cells.attach.AttachDecision`.
    attachments: dict = field(default_factory=dict)
    #: Tag name -> :class:`~repro.cells.handover.HandoverTrace` (mobile only).
    handovers: dict = field(default_factory=dict)
    #: Tag name -> goodput multiplier in [0, 1] (1.0 unless mobile).
    mobility_factor: dict = field(default_factory=dict)
    duration_seconds: float = 0.0
    workers: int = 1
    wall_seconds: float = 0.0
    ambient_transmit_calls: int = 0

    def tag(self, name):
        for report in self.cells.values():
            for result in report.tags:
                if result.name == name:
                    return result
        raise KeyError(name)

    def _factor(self, name):
        return self.mobility_factor.get(name, 1.0)

    @property
    def aggregate_goodput_bps(self):
        """Network goodput with mobility re-sync charged per tag."""
        total = 0.0
        for report in self.cells.values():
            for result in report.tags:
                total += self._factor(result.name) * result.throughput_bps(
                    self.duration_seconds
                )
        return total

    @property
    def mean_ber(self):
        measured = [
            result.ber
            for report in self.cells.values()
            for result in report.tags
            if result.n_bits > 0
        ]
        if not measured:
            return float("nan")
        return sum(measured) / len(measured)

    @property
    def n_handovers(self):
        return sum(trace.n_handovers for trace in self.handovers.values())

    def summary(self):
        """A JSON-ready digest (what ``repro network`` writes to disk)."""
        mean = self.mean_ber
        return {
            "n_cells": self.n_cells,
            "n_tags": self.n_tags,
            "scheme": self.scheme,
            "duration_seconds": self.duration_seconds,
            "aggregate_goodput_bps": self.aggregate_goodput_bps,
            "mean_ber": None if math.isnan(mean) else mean,
            "n_handovers": self.n_handovers,
            "workers": self.workers,
            "ambient_transmit_calls": self.ambient_transmit_calls,
            "cells": {
                str(cell_id): {
                    "n_tags": report.n_tags,
                    "goodput_bps": report.aggregate_throughput_bps,
                    "collision_fraction": report.collision_fraction,
                }
                for cell_id, report in sorted(self.cells.items())
            },
            "attachments": {
                name: {
                    "cell_id": decision.serving_cell_id,
                    "snr_db": decision.serving.snr_db,
                    "verified": decision.verified,
                }
                for name, decision in sorted(self.attachments.items())
            },
        }

    def format_table(self):
        """Per-tag table across cells plus the network footer."""
        header = (
            f"{'tag':8s} {'cell':>4s} {'snr_db':>7s} {'owned':>5s} "
            f"{'bits':>8s} {'BER':>10s} {'kbps':>9s} {'ho':>3s}"
        )
        lines = [header]
        for cell_id in sorted(self.cells):
            for result in self.cells[cell_id].tags:
                decision = self.attachments[result.name]
                trace = self.handovers.get(result.name)
                ber = f"{result.ber:.3e}" if result.n_bits else "-"
                kbps = (
                    self._factor(result.name)
                    * result.throughput_bps(self.duration_seconds)
                    / 1e3
                )
                lines.append(
                    f"{result.name:8s} {cell_id:4d} "
                    f"{decision.serving.snr_db:7.1f} "
                    f"{result.owned_half_frames:5d} {result.n_bits:8d} "
                    f"{ber:>10s} {kbps:9.1f} "
                    f"{trace.n_handovers if trace else 0:3d}"
                )
        lines.append(
            f"network: {self.n_cells} cell(s), {self.n_tags} tag(s), "
            f"{self.aggregate_goodput_bps / 1e3:.1f} kbps aggregate, "
            f"{self.n_handovers} handover(s), scheme={self.scheme}"
        )
        lines.append(
            f"engine: {self.workers} worker(s), wall {self.wall_seconds:.2f} s, "
            f"{self.ambient_transmit_calls} eNodeB transmit call(s)"
        )
        return "\n".join(lines)


class NetworkRunner:
    """One multi-cell network simulation over per-cell cached ambients."""

    def __init__(
        self,
        topology,
        deployment,
        scheme="tdma",
        workers=1,
        seed=0,
        cache=None,
        attach_mode="analytic",
        max_interferers=None,
        handover_policy=None,
        payload_length=20000,
        max_retries=1,
        on_error="raise",
        batch_tags=False,
        streaming=False,
        chunk_half_frames=None,
    ):
        if attach_mode not in ("analytic", "search"):
            raise ValueError(
                f"attach_mode must be 'analytic' or 'search', got {attach_mode!r}"
            )
        self.topology = topology
        self.deployment = deployment
        self.scheme = scheme
        self.workers = workers
        self.seed = int(seed)
        self._owns_cache = cache is None
        self.cache = cache if cache is not None else AmbientCache()
        self.attach_mode = attach_mode
        self.max_interferers = max_interferers
        self.handover_policy = handover_policy or HandoverPolicy()
        self.payload_length = int(payload_length)
        self.max_retries = max_retries
        self.on_error = on_error
        #: Run each cell's cohort through one batched cross-tag demod
        #: pass in the parent (bit-identical to the engine path).
        self.batch_tags = bool(batch_tags)
        #: Run each tag's demodulation through the chunked streaming
        #: receiver (bit-identical, bounded demod working set).
        self.streaming = bool(streaming)
        self.chunk_half_frames = (
            int(chunk_half_frames)
            if chunk_half_frames is not None
            else DEFAULT_CHUNK_HALF_FRAMES
        )
        if self.chunk_half_frames < 1:
            raise ValueError(
                f"chunk_half_frames must be >= 1, got {chunk_half_frames!r}"
            )

    def close(self):
        if self._owns_cache:
            self.cache.close()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    # -- phases -----------------------------------------------------------------

    def _attach_all(self, stage_ambients):
        """Attach every tag at its (first-waypoint) position."""
        decisions = {}
        with span("cells.attach") as sp:
            for tag in self.deployment.tags:
                x, y = tag.position
                if self.attach_mode == "search":
                    decisions[tag.name] = search_attach(
                        self.topology, tag.name, x, y, stage_ambients
                    )
                else:
                    decisions[tag.name] = analytic_attach(
                        self.topology, tag.name, x, y
                    )
            sp.set(n_tags=len(decisions))
        return decisions

    def _cohorts(self, decisions):
        """Group tags by serving cell, in ascending cell-id order."""
        cohorts = {}
        for tag in self.deployment.tags:
            cohorts.setdefault(decisions[tag.name].serving_cell_id, []).append(tag)
        return dict(sorted(cohorts.items()))

    def _schedule_cell(self, site, members):
        """One cell's independent MAC schedule (parent-process RNG)."""
        scheme = make_scheme(
            self.scheme, weights={tag.name: tag.weight for tag in members}
        )
        scheduler = FleetScheduler(
            scheme,
            rng=np.random.default_rng(mac_seed(self.seed, site.cell_id)),
        )
        budget = self.topology.budget_for(site)
        powers = {}
        for tag in members:
            x, y = tag.position
            powers[tag.name] = budget.backscatter_rx_dbm(
                max(site.distance_ft(x, y), _MIN_HOP_FT), tag.tag_to_ue_ft
            )
        return scheduler.assign(
            [tag.name for tag in members],
            2 * site.n_frames,
            powers,
        )

    # -- run --------------------------------------------------------------------

    def run(self):
        """Simulate the network; returns a :class:`NetworkReport`."""
        topology = self.topology
        deployment = self.deployment

        engine = ParallelRunEngine(
            workers=self.workers,
            max_retries=self.max_retries,
            on_error=self.on_error,
        )
        parallel = (
            engine.workers > 1 and deployment.n_tags > 1 and not self.batch_tags
        )
        # Workers need picklable memory-mapped handles; the serial path
        # keeps in-memory stages.  Spilled bytes round-trip exactly, so
        # the choice never changes a single result bit.
        ambients = topology.prepare_ambients(
            self.cache,
            self.seed,
            handles=parallel,
            include_frames=deployment.reference_mode == "decoded",
        )
        if self.attach_mode == "search" and parallel:
            # Search-attach runs in the parent over in-memory stages.
            stage_ambients = topology.prepare_ambients(self.cache, self.seed)
        else:
            stage_ambients = ambients

        decisions = self._attach_all(stage_ambients)
        cohorts = self._cohorts(decisions)

        schedules = {}
        cohort_tasks = []
        for cell_id, members in cohorts.items():
            site = topology.site(cell_id)
            schedule = self._schedule_cell(site, members)
            schedules[cell_id] = schedule
            tasks = []
            for index, tag in enumerate(members):
                x, y = tag.position
                recipes = neighbour_recipes(
                    topology,
                    site,
                    x,
                    y,
                    ambients,
                    max_interferers=self.max_interferers,
                )
                config = deployment.config_for(topology, site, tag)
                if self.streaming:
                    config = replace(
                        config, demod_chunk_half_frames=self.chunk_half_frames
                    )
                tasks.append(
                    TagTask(
                        index=index,
                        name=tag.name,
                        config=config,
                        seed=tag_seed(self.seed, tag.name),
                        owned=tuple(schedule.owned_half_frames(tag.name)),
                        collided=len(schedule.collided_half_frames(tag.name)),
                        payload_length=self.payload_length,
                        enb_to_tag_ft=max(site.distance_ft(x, y), _MIN_HOP_FT),
                        tag_to_ue_ft=tag.tag_to_ue_ft,
                        ambient=CellAmbient(
                            serving=ambients[cell_id], neighbours=recipes
                        ),
                    )
                )
            cohort_tasks.append(CohortTask(cell_id=cell_id, tasks=tasks))
            obs_metrics.counter_inc("cells.cohorts")

        start = time.perf_counter()
        if self.batch_tags:
            # Each cohort shares one capture geometry (one site), so its
            # tags stack into one batched demod pass; the FFT layer
            # spreads rows across cores itself — no engine processes.
            engine.telemetry.workers = 1
            raw = []
            for cohort in cohort_tasks:
                pairs = _simulate_tags_batched(cohort.tasks)
                engine.telemetry.task_seconds += sum(e for e, _ in pairs)
                raw.append([result for _, result in pairs])
        else:
            raw = engine.map(_simulate_cohort, cohort_tasks)
        wall = time.perf_counter() - start

        cells = {}
        for cohort, outcome in zip(cohort_tasks, raw):
            schedule = schedules[cohort.cell_id]
            if isinstance(outcome, TaskFailure):
                results = [
                    TagResult(
                        name=task.name,
                        enb_to_tag_ft=task.enb_to_tag_ft,
                        tag_to_ue_ft=task.tag_to_ue_ft,
                        failed=True,
                        error=outcome.error,
                    )
                    for task in cohort.tasks
                ]
            else:
                results = outcome
            cells[cohort.cell_id] = FleetReport(
                scheme=schedule.scheme,
                n_tags=len(cohort.tasks),
                n_half_frames=schedule.n_half_frames,
                duration_seconds=capture_seconds(schedule.n_half_frames),
                tags=results,
                collision_fraction=schedule.collision_fraction,
                idle_fraction=schedule.idle_fraction,
                airtime_utilisation=schedule.airtime_utilisation,
                workers=engine.workers,
                failed_tags=sum(
                    1 for r in results if getattr(r, "failed", False)
                ),
                transmit_invocations=self.cache.transmit_calls,
            )

        handovers = {}
        mobility_factor = {}
        for tag in deployment.tags:
            if not tag.mobile:
                continue
            trace = simulate_handover(
                topology, tag.name, tag.waypoints, self.handover_policy
            )
            handovers[tag.name] = trace
            mobility_factor[tag.name] = 1.0 - trace.resync_fraction(
                2 * topology.n_frames
            )

        return NetworkReport(
            n_cells=topology.n_cells,
            n_tags=deployment.n_tags,
            scheme=str(self.scheme),
            cells=cells,
            attachments=decisions,
            handovers=handovers,
            mobility_factor=mobility_factor,
            duration_seconds=capture_seconds(2 * topology.n_frames),
            workers=engine.workers,
            wall_seconds=wall,
            ambient_transmit_calls=self.cache.transmit_calls,
        )
