"""Tag attach: rank the neighbourhood, pick a serving cell, verify by search.

A tag bootstrapping in a multi-cell deployment does what a UE does: it
hears the superposition of every nearby downlink, finds PSS/SSS, and camps
on the strongest cell.  Two layers reproduce that here:

* :func:`rank_cells` — the analytic ranking: every cell's post-pathloss
  SNR at the tag's position, sorted best-first with ties broken
  deterministically by cell ID.  This is exact, fast, and what large
  sweeps use.
* :func:`search_attach` — the IQ-verified pipeline: superpose the actual
  neighbourhood captures at the tag (via the interference stage), run
  :func:`repro.lte.cell_search` over the mixture, and confirm the detected
  identity matches the analytic winner.  A mismatch falls back to the
  analytic ranking and is counted (``cells.search_mismatches``) — a tag
  deep in a collision zone may genuinely sync to the wrong cell.

SNR ties are quantised to :data:`SNR_TIE_QUANTUM_DB` before ranking, so a
tag equidistant from two cells attaches to the lower cell ID on every
machine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cells.interference import CellAmbient, neighbour_recipes
from repro.lte.cell_search import cell_search
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span

#: SNR differences below this (dB) count as ties, broken by cell ID.
SNR_TIE_QUANTUM_DB = 1e-9


@dataclass(frozen=True)
class AttachCandidate:
    """One cell as seen from a tag position."""

    cell_id: int
    snr_db: float
    rx_dbm: float
    distance_ft: float


@dataclass(frozen=True)
class AttachDecision:
    """The outcome of one tag's attach procedure."""

    tag: str
    x_ft: float
    y_ft: float
    serving_cell_id: int
    candidates: tuple = ()
    #: True when an IQ cell search over the superposed neighbourhood
    #: confirmed the serving cell's identity.
    verified: bool = False
    #: Cell identity the IQ search actually detected (search mode only).
    searched_cell_id: int = None

    @property
    def serving(self):
        """The serving cell's :class:`AttachCandidate`."""
        for candidate in self.candidates:
            if candidate.cell_id == self.serving_cell_id:
                return candidate
        raise KeyError(self.serving_cell_id)


def rank_cells(topology, x_ft, y_ft):
    """Every cell's :class:`AttachCandidate` at a point, best first.

    Ranking is by post-pathloss SNR quantised to
    :data:`SNR_TIE_QUANTUM_DB`; exact (and float-noise) ties go to the
    lower cell ID, mirroring the PSS candidate ordering in
    :mod:`repro.lte.cell_search`.
    """
    candidates = [
        AttachCandidate(
            cell_id=site.cell_id,
            snr_db=float(topology.snr_db_at(site, x_ft, y_ft)),
            rx_dbm=float(topology.rx_dbm_at(site, x_ft, y_ft)),
            distance_ft=float(site.distance_ft(x_ft, y_ft)),
        )
        for site in topology.sites
    ]
    return sorted(
        candidates,
        key=lambda c: (-round(c.snr_db / SNR_TIE_QUANTUM_DB), c.cell_id),
    )


def attach(topology, name, x_ft, y_ft):
    """Analytic attach: camp on the highest-ranked cell."""
    candidates = rank_cells(topology, x_ft, y_ft)
    obs_metrics.counter_inc("cells.attaches")
    return AttachDecision(
        tag=name,
        x_ft=float(x_ft),
        y_ft=float(y_ft),
        serving_cell_id=candidates[0].cell_id,
        candidates=tuple(candidates),
    )


def search_attach(topology, name, x_ft, y_ft, ambients):
    """IQ-verified attach: cell search over the superposed neighbourhood.

    The mixture is built exactly like the per-tag interference stage —
    strongest cell at unit amplitude, every other cell at its relative
    amplitude and deterministic timing offset — and
    :func:`repro.lte.cell_search` runs over it.  The tag camps on the
    analytic winner when the search confirms its identity; on a mismatch
    it still camps on the searched identity *if that cell exists in the
    topology* (the honest outcome: the tag synced to what it heard),
    falling back to the analytic winner otherwise.
    """
    candidates = rank_cells(topology, x_ft, y_ft)
    best = candidates[0]
    serving_site = topology.site(best.cell_id)
    with span("cells.attach.search") as sp:
        recipes = neighbour_recipes(
            topology, serving_site, x_ft, y_ft, ambients
        )
        stage = CellAmbient(
            serving=ambients[best.cell_id], neighbours=recipes
        ).load()
        params = stage.capture.params
        result = cell_search(stage.unit, params)
        searched = int(result.cell_id)
        sp.set(searched_cell_id=searched, analytic_cell_id=best.cell_id)
    obs_metrics.counter_inc("cells.attaches")
    obs_metrics.counter_inc("cells.search_attaches")
    if searched == best.cell_id:
        serving, verified = best.cell_id, True
    else:
        obs_metrics.counter_inc("cells.search_mismatches")
        known = {candidate.cell_id for candidate in candidates}
        serving, verified = (searched, False) if searched in known else (
            best.cell_id,
            False,
        )
    return AttachDecision(
        tag=name,
        x_ft=float(x_ft),
        y_ft=float(y_ft),
        serving_cell_id=serving,
        candidates=tuple(candidates),
        verified=verified,
        searched_cell_id=searched,
    )
