"""Handover: a moving deployment re-searching and re-attaching mid-run.

A tag glued to a parcel or a bus crosses cell boundaries.  Its serving
downlink fades, and at some point it must redo what it did at boot: run
cell search over whatever it now hears and camp on the winner.  That
re-synchronisation is not free — the tag cannot decode chips while it is
hunting for PSS/SSS — so every handover charges a fixed number of half
frames against the tag's goodput.

The model walks a waypoint list (piecewise positions along the tag's
route, one entry per equal time slice):

* while the serving cell's post-pathloss SNR stays at or above
  ``policy.search_snr_db``, the tag coasts — no search, no cost;
* when it drops below, the tag re-runs cell search (the deterministic
  analytic ranking of :func:`repro.cells.attach.rank_cells`) and hands
  over only if the best candidate beats the serving cell by at least
  ``policy.hysteresis_db`` — the standard A3-style margin that stops
  ping-ponging on the boundary between two equal cells;
* each executed handover costs ``policy.resync_half_frames`` half frames.

Everything here is closed-form over the pathloss model, so a mobility
trace is bit-identical at any worker count and any sharding.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cells.attach import rank_cells
from repro.obs import metrics as obs_metrics


@dataclass(frozen=True)
class HandoverPolicy:
    """When to search and when to switch."""

    #: Re-run cell search when serving SNR (dB) falls below this.
    search_snr_db: float = 10.0
    #: Switch only if the best candidate beats serving by this margin (dB).
    hysteresis_db: float = 3.0
    #: Half frames of decoding lost per executed handover (re-sync cost).
    resync_half_frames: int = 2

    def __post_init__(self):
        if self.hysteresis_db < 0:
            raise ValueError(
                f"hysteresis_db must be >= 0, got {self.hysteresis_db}; a "
                "negative margin would hand over to *weaker* cells"
            )
        if self.resync_half_frames < 0:
            raise ValueError(
                f"resync_half_frames must be >= 0, got {self.resync_half_frames}"
            )


@dataclass(frozen=True)
class HandoverEvent:
    """One waypoint where the tag searched (and possibly switched)."""

    waypoint: int
    x_ft: float
    y_ft: float
    from_cell_id: int
    to_cell_id: int
    serving_snr_db: float
    best_snr_db: float

    @property
    def switched(self):
        return self.to_cell_id != self.from_cell_id


@dataclass(frozen=True)
class HandoverTrace:
    """A tag's mobility outcome: serving cell per waypoint plus costs."""

    tag: str
    policy: HandoverPolicy
    #: Serving cell id at each waypoint (index-aligned with the route).
    serving_cells: tuple
    #: Every waypoint where a search ran (switched or not).
    events: tuple

    @property
    def n_searches(self):
        return len(self.events)

    @property
    def n_handovers(self):
        return sum(1 for event in self.events if event.switched)

    @property
    def resync_half_frames(self):
        return self.n_handovers * self.policy.resync_half_frames

    def resync_fraction(self, total_half_frames):
        """Fraction of the tag's airtime burned re-synchronising.

        This is what the network report multiplies goodput by (as
        ``1 - fraction``); capped at 1.0 — a tag that hands over more
        often than it can re-sync decodes nothing.
        """
        total = int(total_half_frames)
        if total <= 0:
            raise ValueError(
                f"total_half_frames must be positive, got {total_half_frames}"
            )
        return min(1.0, self.resync_half_frames / total)


def simulate_handover(topology, name, waypoints, policy=None):
    """Walk ``waypoints`` and return the tag's :class:`HandoverTrace`.

    The tag attaches at the first waypoint (best cell, ties to the lower
    cell id) and then coasts, searching only when the serving SNR sags
    below the policy threshold.
    """
    policy = policy or HandoverPolicy()
    waypoints = [(float(x), float(y)) for x, y in waypoints]
    if not waypoints:
        raise ValueError(f"tag {name!r}: a mobility route needs >= 1 waypoint")

    first = rank_cells(topology, *waypoints[0])
    serving_id = first[0].cell_id
    serving_cells = [serving_id]
    events = []
    for index, (x, y) in enumerate(waypoints[1:], start=1):
        serving_snr = float(topology.snr_db_at(topology.site(serving_id), x, y))
        if serving_snr >= policy.search_snr_db:
            serving_cells.append(serving_id)
            continue
        best = rank_cells(topology, x, y)[0]
        obs_metrics.counter_inc("cells.handover_searches")
        next_id = serving_id
        if (
            best.cell_id != serving_id
            and best.snr_db - serving_snr >= policy.hysteresis_db
        ):
            next_id = best.cell_id
            obs_metrics.counter_inc("cells.handovers")
        events.append(
            HandoverEvent(
                waypoint=index,
                x_ft=x,
                y_ft=y,
                from_cell_id=serving_id,
                to_cell_id=next_id,
                serving_snr_db=serving_snr,
                best_snr_db=float(best.snr_db),
            )
        )
        serving_id = next_id
        serving_cells.append(serving_id)
    return HandoverTrace(
        tag=name,
        policy=policy,
        serving_cells=tuple(serving_cells),
        events=tuple(events),
    )
