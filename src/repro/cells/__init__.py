"""Multi-cell network simulation: topology, attach, interference, handover."""

from repro.cells.attach import (
    AttachCandidate,
    AttachDecision,
    attach,
    rank_cells,
    search_attach,
)
from repro.cells.handover import (
    HandoverEvent,
    HandoverPolicy,
    HandoverTrace,
    simulate_handover,
)
from repro.cells.interference import (
    CellAmbient,
    NeighbourRecipe,
    neighbour_recipes,
    relative_amplitude_db,
    timing_offset_samples,
)
from repro.cells.network import (
    CohortTask,
    NetworkDeployment,
    NetworkReport,
    NetworkRunner,
    NetworkTag,
)
from repro.cells.site import CellSite
from repro.cells.topology import Topology, ambient_seed

__all__ = [
    "AttachCandidate",
    "AttachDecision",
    "CellAmbient",
    "CellSite",
    "CohortTask",
    "HandoverEvent",
    "HandoverPolicy",
    "HandoverTrace",
    "NeighbourRecipe",
    "NetworkDeployment",
    "NetworkReport",
    "NetworkRunner",
    "NetworkTag",
    "Topology",
    "ambient_seed",
    "attach",
    "neighbour_recipes",
    "rank_cells",
    "relative_amplitude_db",
    "search_attach",
    "simulate_handover",
    "timing_offset_samples",
]
