"""802.11 OFDM symbol assembly and the PLCP preamble."""

from __future__ import annotations

import numpy as np

from repro.wifi.params import (
    DATA_BINS,
    FFT_SIZE,
    GI_SAMPLES,
    PILOT_BINS,
    pilot_polarity,
)

#: Short-training-field frequency pattern (bins -26..26, every 4th).
_STF_BINS = np.array([-24, -20, -16, -12, -8, -4, 4, 8, 12, 16, 20, 24])
_STF_VALUES = np.sqrt(13.0 / 6.0) * np.array(
    [
        1 + 1j, -1 - 1j, 1 + 1j, -1 - 1j, -1 - 1j, 1 + 1j,
        -1 - 1j, -1 - 1j, 1 + 1j, 1 + 1j, 1 + 1j, 1 + 1j,
    ]
)

#: Long-training-field values on bins -26..-1, 1..26.
_LTF_VALUES = np.array(
    [1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1, 1, 1, 1, -1, -1, 1, 1, -1,
     1, -1, 1, 1, 1, 1,
     1, -1, -1, 1, 1, -1, 1, -1, 1, -1, -1, -1, -1, -1, 1, 1, -1, -1, 1,
     -1, 1, -1, 1, 1, 1, 1],
    dtype=float,
)
_LTF_BINS = np.array([k for k in range(-26, 27) if k != 0], dtype=np.int64)


def _ifft_from_bins(bins_idx, values):
    grid = np.zeros(FFT_SIZE, dtype=complex)
    grid[bins_idx % FFT_SIZE] = values
    return np.fft.ifft(grid) * np.sqrt(FFT_SIZE)


def stf_waveform():
    """The 8 us short training field (160 samples)."""
    base = _ifft_from_bins(_STF_BINS, _STF_VALUES)
    return np.tile(base, 3)[:160]


def ltf_waveform():
    """The 8 us long training field: GI2 + two LTF symbols (160 samples)."""
    base = _ifft_from_bins(_LTF_BINS, _LTF_VALUES)
    return np.concatenate([base[-32:], base, base])


def ltf_symbol():
    """One LTF useful symbol (64 samples) — the channel-sounding template."""
    return _ifft_from_bins(_LTF_BINS, _LTF_VALUES)


def ltf_reference():
    """Frequency-domain LTF values on the 52 used bins."""
    return _LTF_VALUES.astype(complex)


def assemble_symbol(data_values, pilot_sign):
    """One OFDM data symbol from 48 data values and the pilot polarity."""
    if len(data_values) != len(DATA_BINS):
        raise ValueError(f"need {len(DATA_BINS)} data values")
    grid = np.zeros(FFT_SIZE, dtype=complex)
    grid[DATA_BINS % FFT_SIZE] = data_values
    grid[PILOT_BINS % FFT_SIZE] = pilot_sign * np.array([1, 1, 1, -1], dtype=float)
    useful = np.fft.ifft(grid) * np.sqrt(FFT_SIZE)
    return np.concatenate([useful[-GI_SAMPLES:], useful])


def split_symbol(samples):
    """FFT one received symbol; returns (data_values, pilot_values)."""
    if len(samples) != FFT_SIZE + GI_SAMPLES:
        raise ValueError("wrong symbol length")
    useful = samples[GI_SAMPLES:]
    bins = np.fft.fft(useful) / np.sqrt(FFT_SIZE)
    return bins[DATA_BINS % FFT_SIZE], bins[PILOT_BINS % FFT_SIZE]


def used_bins_values(samples):
    """FFT one useful symbol (64 samples) onto the 52 used bins."""
    bins = np.fft.fft(samples) / np.sqrt(FFT_SIZE)
    return bins[_LTF_BINS % FFT_SIZE]
