"""802.11a/g packet transmitter."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.lte.modulation import modulate
from repro.wifi import coding
from repro.wifi.ofdm import assemble_symbol, ltf_waveform, stf_waveform
from repro.wifi.params import WIFI_RATES, pilot_polarity
from repro.utils.rng import make_rng

#: Bits in the SERVICE field (all zero; initialises the descrambler).
SERVICE_BITS = 16

#: Encoder tail bits.
TAIL_BITS = 6


@dataclass
class WifiPacket:
    """One transmitted packet: samples plus ground truth."""

    samples: np.ndarray
    psdu_bits: np.ndarray
    rate_mbps: float
    n_data_symbols: int

    @property
    def duration_seconds(self):
        return len(self.samples) / 20e6


class WifiTransmitter:
    """Build 802.11a/g packets (preamble + SIGNAL + DATA)."""

    def __init__(self, rate_mbps=12.0, rng=None):
        if rate_mbps not in WIFI_RATES:
            raise ValueError(f"unsupported rate {rate_mbps}; use {sorted(WIFI_RATES)}")
        self.rate = WIFI_RATES[rate_mbps]
        self.rng = make_rng(rng)

    def _signal_field(self, psdu_bytes):
        """SIGNAL symbol: RATE(4) + R(1) + LENGTH(12) + parity + tail, BPSK 1/2."""
        bits = np.zeros(24, dtype=np.int8)
        for i in range(4):
            bits[i] = (self.rate.signal_bits >> (3 - i)) & 1
        for i in range(12):
            bits[5 + i] = (psdu_bytes >> i) & 1
        bits[17] = int(np.sum(bits[:17])) % 2
        coded = coding.conv_encode_half(bits)
        interleaved = coding.interleave(coded, 48, 1)
        symbols = modulate(interleaved, "bpsk")
        # SIGNAL is real BPSK on the I rail in the standard; the complex
        # BPSK used here is self-consistent between our TX and RX.
        return assemble_symbol(symbols, pilot_polarity(1)[0])

    def transmit(self, psdu_bits=None, psdu_bytes=100):
        """Build one packet; random PSDU unless bits are supplied."""
        if psdu_bits is None:
            psdu_bits = self.rng.integers(0, 2, size=8 * int(psdu_bytes)).astype(
                np.int8
            )
        psdu_bits = np.asarray(psdu_bits, dtype=np.int8)
        if len(psdu_bits) % 8:
            raise ValueError("PSDU must be a whole number of bytes")
        n_bytes = len(psdu_bits) // 8

        dbps = self.rate.data_bits_per_symbol
        payload_bits = SERVICE_BITS + len(psdu_bits) + TAIL_BITS
        n_symbols = int(np.ceil(payload_bits / dbps))
        padded = np.zeros(n_symbols * dbps, dtype=np.int8)
        padded[SERVICE_BITS : SERVICE_BITS + len(psdu_bits)] = psdu_bits

        scrambled = coding.scramble(padded)
        # Tail bits must be zero *after* scrambling so the decoder
        # terminates in state 0.
        tail_start = SERVICE_BITS + len(psdu_bits)
        scrambled[tail_start : tail_start + TAIL_BITS] = 0
        coded = coding.conv_encode_half(scrambled)
        punctured = coding.puncture(
            coded, self.rate.code_rate_num, self.rate.code_rate_den
        )
        interleaved = coding.interleave(
            punctured,
            self.rate.coded_bits_per_symbol,
            self.rate.bits_per_subcarrier,
        )
        values = modulate(interleaved, self.rate.modulation)

        polarity = pilot_polarity(n_symbols + 1)
        pieces = [stf_waveform(), ltf_waveform(), self._signal_field(n_bytes)]
        per_symbol = len(values) // n_symbols
        for sym in range(n_symbols):
            chunk = values[sym * per_symbol : (sym + 1) * per_symbol]
            pieces.append(assemble_symbol(chunk, polarity[sym + 1]))
        return WifiPacket(
            samples=np.concatenate(pieces),
            psdu_bits=psdu_bits,
            rate_mbps=self.rate.rate_mbps,
            n_data_symbols=n_symbols,
        )
