"""802.11a/g packet receiver: detection, channel estimation, decoding."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.signal import fftconvolve

from repro.lte.modulation import demodulate_llr
from repro.wifi import coding
from repro.wifi.ofdm import ltf_reference, ltf_symbol, split_symbol, used_bins_values
from repro.wifi.params import (
    DATA_BINS,
    FFT_SIZE,
    GI_SAMPLES,
    PILOT_BINS,
    WIFI_RATES,
    pilot_polarity,
)
from repro.wifi.transmitter import SERVICE_BITS, TAIL_BITS

#: Preamble length in samples (STF + LTF).
PREAMBLE_SAMPLES = 320


@dataclass
class WifiDecodeResult:
    """Outcome of decoding one packet."""

    detected: bool
    psdu_bits: np.ndarray = None
    rate_mbps: float = float("nan")
    start: int = -1
    bit_errors_vs: int = -1

    def errors_against(self, reference_bits):
        """Count PSDU bit errors against ground truth."""
        if self.psdu_bits is None:
            return len(reference_bits)
        reference_bits = np.asarray(reference_bits, dtype=np.int8)
        if len(self.psdu_bits) != len(reference_bits):
            return len(reference_bits)
        return int(np.sum(self.psdu_bits != reference_bits))


def detect_packet(samples, threshold=0.6):
    """Find the LTF by normalised correlation; returns the LTF1 start or -1."""
    samples = np.asarray(samples, dtype=complex)
    template = ltf_symbol()
    n = len(template)
    if len(samples) < n:
        return -1
    corr = fftconvolve(samples, np.conj(template[::-1]), mode="valid")
    energy = fftconvolve(np.abs(samples) ** 2, np.ones(n), mode="valid").real
    floor = max(1e-30, 0.05 * float(np.median(energy)))
    template_energy = float(np.sum(np.abs(template) ** 2))
    metric = np.abs(corr) / np.sqrt(np.maximum(energy, floor) * template_energy)
    peak = int(np.argmax(metric))
    if metric[peak] < threshold:
        return -1
    # The LTF repeats: prefer the first of the two correlation peaks.
    if peak >= n and metric[peak - n] > 0.9 * metric[peak]:
        peak -= n
    return peak


class WifiReceiver:
    """Decode 802.11a/g packets whose rate is known or read from SIGNAL."""

    def __init__(self, rate_mbps=None):
        self.rate = WIFI_RATES[rate_mbps] if rate_mbps is not None else None

    def _channel_from_ltf(self, samples, ltf1_start):
        l1 = used_bins_values(samples[ltf1_start : ltf1_start + FFT_SIZE])
        l2 = used_bins_values(
            samples[ltf1_start + FFT_SIZE : ltf1_start + 2 * FFT_SIZE]
        )
        reference = ltf_reference()
        return 0.5 * (l1 + l2) * np.conj(reference) / np.abs(reference) ** 2

    def _decode_signal(self, samples, start, channel_data):
        sym = samples[start : start + FFT_SIZE + GI_SAMPLES]
        data, _pilots = split_symbol(sym)
        equalized = data * np.conj(channel_data) / (np.abs(channel_data) ** 2 + 1e-12)
        llrs = demodulate_llr(equalized, "bpsk", 0.1)
        deinterleaved = coding.deinterleave(llrs, 48, 1)
        bits = coding.viterbi_half(deinterleaved, 24)
        rate_code = int("".join(str(b) for b in bits[:4]), 2)
        length = 0
        for i in range(12):
            length |= int(bits[5 + i]) << i
        parity_ok = int(np.sum(bits[:17])) % 2 == int(bits[17])
        rate = next(
            (r for r in WIFI_RATES.values() if r.signal_bits == rate_code), None
        )
        return rate, length, parity_ok

    def decode(self, samples, ltf1_start=None):
        """Decode the first packet found in ``samples``."""
        samples = np.asarray(samples, dtype=complex)
        if ltf1_start is None:
            ltf1_start = detect_packet(samples)
            if ltf1_start < 0:
                return WifiDecodeResult(detected=False)
            # detect_packet returns the useful-LTF start; skip GI2 handling.
        channel = self._channel_from_ltf(samples, ltf1_start)
        used_bins = np.array([k for k in range(-26, 27) if k != 0])
        data_mask = np.isin(used_bins, DATA_BINS)
        channel_data = channel[data_mask]

        signal_start = ltf1_start + 2 * FFT_SIZE
        rate, length, parity_ok = self._decode_signal(
            samples, signal_start, channel_data
        )
        if self.rate is not None:
            rate = self.rate
        if rate is None or not parity_ok and self.rate is None:
            return WifiDecodeResult(detected=False, start=int(ltf1_start))

        dbps = rate.data_bits_per_symbol
        payload_bits = SERVICE_BITS + 8 * length + TAIL_BITS
        n_symbols = int(np.ceil(payload_bits / dbps))

        llr_blocks = []
        offset = signal_start + FFT_SIZE + GI_SAMPLES
        polarity = pilot_polarity(n_symbols + 1)
        for sym in range(n_symbols):
            chunk = samples[offset : offset + FFT_SIZE + GI_SAMPLES]
            if len(chunk) < FFT_SIZE + GI_SAMPLES:
                return WifiDecodeResult(detected=False, start=int(ltf1_start))
            data, pilots = split_symbol(chunk)
            eq = data * np.conj(channel_data) / (np.abs(channel_data) ** 2 + 1e-12)
            # Residual common phase from the pilots.
            pilot_ref = polarity[sym + 1] * np.array([1, 1, 1, -1], dtype=float)
            pilot_channel = channel[np.isin(used_bins, PILOT_BINS)]
            pilot_eq = pilots * np.conj(pilot_channel) / (
                np.abs(pilot_channel) ** 2 + 1e-12
            )
            phase = np.angle(np.sum(pilot_eq * pilot_ref))
            eq = eq * np.exp(-1j * phase)
            llr_blocks.append(demodulate_llr(eq, rate.modulation, 0.1))
            offset += FFT_SIZE + GI_SAMPLES

        llrs = np.concatenate(llr_blocks)
        deinterleaved = coding.deinterleave(
            llrs, rate.coded_bits_per_symbol, rate.bits_per_subcarrier
        )
        coded_length = 2 * n_symbols * dbps
        soft = coding.depuncture(
            deinterleaved, rate.code_rate_num, rate.code_rate_den, coded_length
        )
        decoded = coding.viterbi_half(soft, n_symbols * dbps)
        descrambled = coding.scramble(decoded)  # self-inverse
        psdu = descrambled[SERVICE_BITS : SERVICE_BITS + 8 * length]
        return WifiDecodeResult(
            detected=True,
            psdu_bits=psdu.astype(np.int8),
            rate_mbps=rate.rate_mbps,
            start=int(ltf1_start),
        )
