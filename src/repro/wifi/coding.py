"""802.11a/g bit pipeline: scrambling, BCC, puncturing, interleaving.

Rate-1/2 convolutional code, K = 7, generators (133, 171) octal, zero
tail; optional puncturing to rate 3/4; per-symbol block interleaver.
"""

from __future__ import annotations

import numpy as np

_G0 = 0o133
_G1 = 0o171
_K = 7
_N_STATES = 64


def scramble(bits, seed=0x5D):
    """802.11 frame-synchronous scrambler (x^7 + x^4 + 1).

    Self-inverse: applying it twice with the same seed restores the input.
    """
    bits = np.asarray(bits, dtype=np.int8)
    state = int(seed) & 0x7F
    out = np.empty_like(bits)
    for i, b in enumerate(bits):
        feedback = ((state >> 6) ^ (state >> 3)) & 1
        state = ((state << 1) | feedback) & 0x7F
        out[i] = b ^ feedback
    return out


def _build_tables():
    next_state = np.zeros((_N_STATES, 2), dtype=np.int64)
    outputs = np.zeros((_N_STATES, 2, 2), dtype=np.int8)
    for state in range(_N_STATES):
        for bit in (0, 1):
            register = (bit << (_K - 1)) | state
            next_state[state, bit] = register >> 1
            outputs[state, bit, 0] = bin(register & _G0).count("1") & 1
            outputs[state, bit, 1] = bin(register & _G1).count("1") & 1
    return next_state, outputs


_NEXT_STATE, _OUTPUTS = _build_tables()
_SIGNS = (1.0 - 2.0 * _OUTPUTS.astype(float)).reshape(-1, 2)


def _predecessors():
    table = np.zeros((_N_STATES, 2, 2), dtype=np.int64)
    counts = np.zeros(_N_STATES, dtype=np.int64)
    for state in range(_N_STATES):
        for bit in (0, 1):
            new = _NEXT_STATE[state, bit]
            table[new, counts[new]] = (state, bit)
            counts[new] += 1
    return table


_PRED = _predecessors()
_PREV_STATE = _PRED[:, :, 0]
_PREV_INPUT = _PRED[:, :, 1]


def conv_encode_half(bits):
    """Rate-1/2 encode with zero start state (caller appends tail bits)."""
    bits = np.asarray(bits, dtype=np.int64)
    coded = np.empty((len(bits), 2), dtype=np.int8)
    state = 0
    for n, bit in enumerate(bits):
        coded[n] = _OUTPUTS[state, bit]
        state = _NEXT_STATE[state, bit]
    return coded.reshape(-1)


def viterbi_half(llrs, n_bits):
    """Decode a zero-tailed rate-1/2 stream (positive LLR = bit 0)."""
    llrs = np.asarray(llrs, dtype=float).reshape(int(n_bits), 2)
    n_steps = llrs.shape[0]
    metrics = np.full(_N_STATES, -1e9)
    metrics[0] = 0.0
    decisions = np.empty((n_steps, _N_STATES), dtype=np.int8)
    for step in range(n_steps):
        branch = (llrs[step] @ _SIGNS.T).reshape(_N_STATES, 2)
        cand = metrics[_PREV_STATE] + branch[_PREV_STATE, _PREV_INPUT]
        choice = np.argmax(cand, axis=1)
        metrics = cand[np.arange(_N_STATES), choice]
        decisions[step] = choice
        metrics -= metrics.max()
    state = 0  # zero tail drives the encoder back to state 0
    hard = np.empty(n_steps, dtype=np.int8)
    for step in range(n_steps - 1, -1, -1):
        choice = decisions[step, state]
        hard[step] = _PREV_INPUT[state, choice]
        state = _PREV_STATE[state, choice]
    return hard


#: Puncturing pattern for rate 3/4 (per 802.11: drop bits 3 and 4 of each 6).
_PUNCTURE_34 = np.array([1, 1, 1, 0, 0, 1], dtype=bool)


def puncture(coded, num, den):
    """Puncture a rate-1/2 stream to num/den (1/2 passthrough, 3/4)."""
    coded = np.asarray(coded, dtype=np.int8)
    if (num, den) == (1, 2):
        return coded
    if (num, den) == (3, 4):
        reps = int(np.ceil(len(coded) / 6))
        mask = np.tile(_PUNCTURE_34, reps)[: len(coded)]
        return coded[mask]
    raise ValueError(f"unsupported code rate {num}/{den}")


def depuncture(llrs, num, den, coded_length):
    """Insert zero LLRs at punctured positions."""
    llrs = np.asarray(llrs, dtype=float)
    if (num, den) == (1, 2):
        return llrs
    if (num, den) == (3, 4):
        out = np.zeros(int(coded_length))
        reps = int(np.ceil(coded_length / 6))
        mask = np.tile(_PUNCTURE_34, reps)[:coded_length]
        out[mask] = llrs
        return out
    raise ValueError(f"unsupported code rate {num}/{den}")


def interleave(bits, coded_bits_per_symbol, bits_per_subcarrier):
    """Per-symbol two-permutation interleaver (802.11-2016 §17.3.5.7)."""
    bits = np.asarray(bits)
    n_cbps = int(coded_bits_per_symbol)
    if len(bits) % n_cbps:
        raise ValueError("bit count not a multiple of coded bits per symbol")
    s = max(bits_per_subcarrier // 2, 1)
    k = np.arange(n_cbps)
    i = (n_cbps // 16) * (k % 16) + k // 16
    j = s * (i // s) + (i + n_cbps - (16 * i) // n_cbps) % s
    perm = np.empty(n_cbps, dtype=np.int64)
    perm[j] = k  # output position j carries input bit k
    out = np.empty_like(bits)
    for sym in range(len(bits) // n_cbps):
        block = bits[sym * n_cbps : (sym + 1) * n_cbps]
        out[sym * n_cbps : (sym + 1) * n_cbps] = block[perm]
    return out


def deinterleave(values, coded_bits_per_symbol, bits_per_subcarrier):
    """Inverse of :func:`interleave` (works on bits or LLRs)."""
    values = np.asarray(values)
    n_cbps = int(coded_bits_per_symbol)
    if len(values) % n_cbps:
        raise ValueError("length not a multiple of coded bits per symbol")
    s = max(bits_per_subcarrier // 2, 1)
    k = np.arange(n_cbps)
    i = (n_cbps // 16) * (k % 16) + k // 16
    j = s * (i // s) + (i + n_cbps - (16 * i) // n_cbps) % s
    out = np.empty_like(values)
    for sym in range(len(values) // n_cbps):
        block = values[sym * n_cbps : (sym + 1) * n_cbps]
        out[sym * n_cbps : (sym + 1) * n_cbps] = block[j]
    return out
