"""802.11a/g OFDM PHY substrate.

The WiFi-backscatter baseline (FreeRider-style) needs a real WiFi signal
to piggyback on; this package provides a from-scratch 20 MHz OFDM PHY —
STF/LTF preamble, SIGNAL field, BCC coding with interleaving, pilots —
with a transmitter and a full receiver (packet detection, channel
estimation, Viterbi decoding).
"""

from repro.wifi.params import WifiParams, WIFI_RATES
from repro.wifi.transmitter import WifiTransmitter, WifiPacket
from repro.wifi.receiver import WifiReceiver, WifiDecodeResult

__all__ = [
    "WifiParams",
    "WIFI_RATES",
    "WifiTransmitter",
    "WifiPacket",
    "WifiReceiver",
    "WifiDecodeResult",
]
